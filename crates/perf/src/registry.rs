//! A named-metrics registry: counters, gauges and histograms.

use std::collections::BTreeMap;

use crate::hist::Hist;
use crate::json::Value;

/// A deterministic registry of named metrics.
///
/// All maps are `BTreeMap`s, so iteration, rendering and JSON export are
/// ordered by name regardless of insertion order. The machine layer
/// assembles a registry per report in PE order, which makes Seq and Par
/// phase-driver runs produce bit-identical registries.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    hists: BTreeMap<String, Hist>,
}

impl Registry {
    /// Adds `v` to the named counter (creating it at zero).
    pub fn count(&mut self, name: &str, v: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += v;
    }

    /// Sets the named gauge to `v`.
    pub fn gauge(&mut self, name: &str, v: i64) {
        self.gauges.insert(name.to_string(), v);
    }

    /// Records a sample into the named histogram (creating it empty).
    pub fn observe(&mut self, name: &str, v: u64) {
        self.hists.entry(name.to_string()).or_default().record(v);
    }

    /// Merges a whole histogram into the named histogram.
    pub fn observe_hist(&mut self, name: &str, h: &Hist) {
        self.hists.entry(name.to_string()).or_default().merge(h);
    }

    /// Reads a counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Reads a gauge.
    pub fn gauge_value(&self, name: &str) -> Option<i64> {
        self.gauges.get(name).copied()
    }

    /// Reads a histogram.
    pub fn hist(&self, name: &str) -> Option<&Hist> {
        self.hists.get(name)
    }

    /// All counters, ordered by name.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All gauges, ordered by name.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, i64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All histograms, ordered by name.
    pub fn hists(&self) -> impl Iterator<Item = (&str, &Hist)> {
        self.hists.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Merges another registry: counters add, gauges overwrite,
    /// histograms merge bucket-wise.
    pub fn merge(&mut self, other: &Registry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.hists {
            self.hists.entry(k.clone()).or_default().merge(h);
        }
    }

    /// Renders a fixed-width text listing.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (k, v) in &self.counters {
                out.push_str(&format!("  {k:<28} {v}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (k, v) in &self.gauges {
                out.push_str(&format!("  {k:<28} {v}\n"));
            }
        }
        if !self.hists.is_empty() {
            out.push_str("histograms:                    count    mean     p50     p95     p99\n");
            for (k, h) in &self.hists {
                out.push_str(&format!(
                    "  {k:<28} {:>6} {:>7.1} {:>7} {:>7} {:>7}\n",
                    h.count(),
                    h.mean(),
                    h.p50(),
                    h.p95(),
                    h.p99()
                ));
            }
        }
        out
    }

    /// Exports the registry as a JSON object.
    pub fn to_json(&self) -> Value {
        let counters = Value::Obj(
            self.counters
                .iter()
                .map(|(k, &v)| (k.clone(), Value::Int(v as i64)))
                .collect(),
        );
        let gauges = Value::Obj(
            self.gauges
                .iter()
                .map(|(k, &v)| (k.clone(), Value::Int(v)))
                .collect(),
        );
        let hists = Value::Obj(
            self.hists
                .iter()
                .map(|(k, h)| {
                    (
                        k.clone(),
                        Value::obj(vec![
                            ("count", Value::Int(h.count() as i64)),
                            ("sum", Value::Int(h.sum() as i64)),
                            ("p50", Value::Int(h.p50() as i64)),
                            ("p95", Value::Int(h.p95() as i64)),
                            ("p99", Value::Int(h.p99() as i64)),
                            (
                                "buckets",
                                Value::Arr(
                                    h.buckets()
                                        .map(|(hi, c)| {
                                            Value::Arr(vec![
                                                Value::Int(hi.min(i64::MAX as u64) as i64),
                                                Value::Int(c as i64),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ),
                        ]),
                    )
                })
                .collect(),
        );
        Value::obj(vec![
            ("counters", counters),
            ("gauges", gauges),
            ("histograms", hists),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_merge() {
        let mut a = Registry::default();
        a.count("ops.reads", 3);
        a.count("ops.reads", 2);
        a.gauge("wbuf.pending", 4);
        a.observe("lat.ld.remote", 91);
        let mut b = Registry::default();
        b.count("ops.reads", 10);
        b.gauge("wbuf.pending", 7);
        b.observe("lat.ld.remote", 87);
        a.merge(&b);
        assert_eq!(a.counter("ops.reads"), 15);
        assert_eq!(a.gauge_value("wbuf.pending"), Some(7));
        assert_eq!(a.hist("lat.ld.remote").unwrap().count(), 2);
    }

    #[test]
    fn render_and_json_are_ordered() {
        let mut r = Registry::default();
        r.count("z.last", 1);
        r.count("a.first", 2);
        let text = r.render();
        assert!(text.find("a.first").unwrap() < text.find("z.last").unwrap());
        let js = r.to_json().render();
        assert!(js.find("a.first").unwrap() < js.find("z.last").unwrap());
    }
}
