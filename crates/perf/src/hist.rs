//! Log₂-bucketed latency histograms.

/// Number of buckets: bucket *i* holds samples with
/// `floor(log2(v)) == i` (bucket 0 also holds zero).
const BUCKETS: usize = 65;

/// A log₂-bucketed histogram of cycle counts.
///
/// Percentiles are bucket-resolution: `pXX` reports the inclusive upper
/// bound of the bucket containing the XXth-percentile sample — exact
/// enough for plateau-style latency distributions, and deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hist {
    counts: [u64; BUCKETS],
    sum: u64,
}

impl Default for Hist {
    fn default() -> Self {
        Hist {
            counts: [0; BUCKETS],
            sum: 0,
        }
    }
}

fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        63 - v.leading_zeros() as usize
    }
}

/// Inclusive upper bound of bucket `i` (`2^(i+1) - 1`).
fn bucket_hi(i: usize) -> u64 {
    if i >= 63 {
        u64::MAX
    } else {
        (2u64 << i) - 1
    }
}

impl Hist {
    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_of(v)] += 1;
        self.sum += v;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// The `p`-quantile (0 < p ≤ 100) at bucket resolution: the upper
    /// bound of the bucket holding the sample at that rank.
    ///
    /// An **empty histogram reports 0** for every percentile. This is
    /// a contract, not an accident: aggregators (the `t3d-sched` fleet
    /// metrics, BENCH document summaries) serialize percentiles of
    /// histograms that may have received no samples, and 0 is the
    /// sentinel those schemas rely on. Pinned by
    /// `empty_percentiles_are_zero`.
    pub fn percentile(&self, p: u64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = (n * p).div_ceil(100).max(1);
        let mut acc = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= rank {
                return bucket_hi(i);
            }
        }
        bucket_hi(BUCKETS - 1)
    }

    /// Median (bucket upper bound).
    pub fn p50(&self) -> u64 {
        self.percentile(50)
    }

    /// 95th percentile (bucket upper bound).
    pub fn p95(&self) -> u64 {
        self.percentile(95)
    }

    /// 99th percentile (bucket upper bound).
    pub fn p99(&self) -> u64 {
        self.percentile(99)
    }

    /// Adds another histogram bucket-wise.
    pub fn merge(&mut self, other: &Hist) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.sum += other.sum;
    }

    /// Non-empty buckets as `(inclusive upper bound, count)`, smallest
    /// first.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_hi(i), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(1023), 9);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_hi(0), 1);
        assert_eq!(bucket_hi(4), 31);
    }

    #[test]
    fn percentiles_report_bucket_bounds() {
        let mut h = Hist::default();
        for _ in 0..90 {
            h.record(20); // bucket [16,31]
        }
        for _ in 0..10 {
            h.record(1000); // bucket [512,1023]
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.p50(), 31);
        assert_eq!(h.percentile(90), 31);
        assert_eq!(h.p95(), 1023);
        assert_eq!(h.p99(), 1023);
        assert!((h.mean() - (90.0 * 20.0 + 10.0 * 1000.0) / 100.0).abs() < 1e-9);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Hist::default();
        a.record(5);
        let mut b = Hist::default();
        b.record(7);
        b.record(9);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 21);
        let buckets: Vec<_> = a.buckets().collect();
        assert_eq!(buckets, vec![(7, 2), (15, 1)]);
    }

    #[test]
    fn empty_hist_is_quiet() {
        let h = Hist::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn empty_percentiles_are_zero() {
        // The documented contract: every percentile of an empty
        // histogram is 0 (schemas use 0 as the no-samples sentinel),
        // and merging empty histograms preserves that.
        let mut h = Hist::default();
        for p in [1, 50, 95, 99, 100] {
            assert_eq!(h.percentile(p), 0, "p{p} of empty must be 0");
        }
        h.merge(&Hist::default());
        assert_eq!(h.count(), 0);
        assert_eq!(h.p99(), 0);
        // One sample flips every percentile to its bucket bound.
        h.record(0);
        assert_eq!(h.percentile(1), 1);
        assert_eq!(h.p99(), 1);
    }
}
