//! Perf-trajectory bench documents (`BENCH_*.json`) and the regression
//! comparator.
//!
//! Two kinds of figures live in a document, compared with two
//! disciplines:
//!
//! * **virtual** figures (cycle totals, attribution, determinism
//!   checksums) are bit-deterministic. Checksums compare *strictly*;
//!   cycle totals carry a tolerance only to absorb deliberate
//!   timing-model changes;
//! * **host** figures (the `throughput` block: sim-cycles/sec and
//!   ops/sec) vary run to run and machine to machine, so they compare
//!   with a separate, generous regression tolerance and never byte
//!   equality. No raw wall-clock is written into baselines — the v1
//!   schema's `wall_ms` field churned every regeneration and is gone.

use std::collections::BTreeMap;

use crate::json::{parse, Value};
use crate::throughput::{Stat, Throughput};

/// Document schema tag, bumped on incompatible layout changes.
pub const BENCH_SCHEMA: &str = "t3d-perf-bench-v2";

/// The previous schema tag: still parseable (entries carry no
/// throughput block; the nondeterministic `wall_ms` field is dropped on
/// read), so trajectory tooling can compare across the migration.
pub const BENCH_SCHEMA_V1: &str = "t3d-perf-bench-v1";

/// One benchmark's record.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// Stable benchmark name (the compare key).
    pub name: String,
    /// Total virtual cycles — the strictly compared figure of merit.
    pub cycles: u64,
    /// Cycle attribution by cost-class label (non-zero classes only).
    pub attribution: BTreeMap<String, u64>,
    /// Extra derived metrics (e.g. `us_per_edge`), informational.
    pub extras: BTreeMap<String, f64>,
    /// Host-throughput measurement, when the run recorded one. The
    /// checksum inside compares strictly; the rates compare with the
    /// host tolerance.
    pub throughput: Option<Throughput>,
}

/// A suite of benchmark records.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchDoc {
    /// Suite name (`"em3d"`, `"micro"`).
    pub suite: String,
    /// The entries, in run order.
    pub entries: Vec<BenchEntry>,
}

fn stat_json(s: &Stat) -> Value {
    Value::obj(vec![
        ("mean", Value::Float(s.mean)),
        ("stddev", Value::Float(s.stddev)),
    ])
}

fn stat_from(v: Option<&Value>) -> Stat {
    let Some(v) = v else {
        return Stat::default();
    };
    Stat {
        mean: v.get("mean").and_then(|x| x.as_f64()).unwrap_or(0.0),
        stddev: v.get("stddev").and_then(|x| x.as_f64()).unwrap_or(0.0),
    }
}

fn throughput_json(t: &Throughput) -> Value {
    let mut fields = vec![
        ("cycles_per_sec", stat_json(&t.cycles_per_sec)),
        ("ops_per_sec", stat_json(&t.ops_per_sec)),
        ("sim_cycles", Value::Int(t.sim_cycles as i64)),
        ("sim_ops", Value::Int(t.sim_ops as i64)),
        // Hex string: FNV checksums use the full u64 range, which a
        // JSON i64 cannot carry.
        ("checksum", Value::Str(format!("{:#018x}", t.checksum))),
        ("runs", Value::Int(t.runs as i64)),
        ("warmup", Value::Int(t.warmup as i64)),
    ];
    // Additive v2 field: setup seconds per run, present only when the
    // benchmark was measured with the setup/simulation split. Documents
    // without it parse back as `setup: None`.
    if let Some(setup) = &t.setup {
        fields.push(("setup", stat_json(setup)));
    }
    Value::obj(fields)
}

fn throughput_from(v: &Value) -> Result<Throughput, String> {
    let checksum_text = v
        .get("checksum")
        .and_then(|c| c.as_str())
        .ok_or("throughput block missing checksum")?;
    let digits = checksum_text.strip_prefix("0x").unwrap_or(checksum_text);
    let checksum = u64::from_str_radix(digits, 16)
        .map_err(|e| format!("bad throughput checksum {checksum_text:?}: {e}"))?;
    let int = |key: &str| v.get(key).and_then(|x| x.as_i64()).unwrap_or(0);
    Ok(Throughput {
        cycles_per_sec: stat_from(v.get("cycles_per_sec")),
        ops_per_sec: stat_from(v.get("ops_per_sec")),
        sim_cycles: int("sim_cycles") as u64,
        sim_ops: int("sim_ops") as u64,
        checksum,
        runs: int("runs") as u32,
        warmup: int("warmup") as u32,
        setup: v.get("setup").map(|s| stat_from(Some(s))),
    })
}

impl BenchDoc {
    /// An empty document for `suite`.
    pub fn new(suite: &str) -> BenchDoc {
        BenchDoc {
            suite: suite.to_string(),
            entries: Vec::new(),
        }
    }

    /// Looks up an entry by name.
    pub fn entry(&self, name: &str) -> Option<&BenchEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// Exports the document as JSON (always the current schema).
    pub fn to_json(&self) -> Value {
        let entries = self
            .entries
            .iter()
            .map(|e| {
                let mut fields = vec![
                    ("name", Value::Str(e.name.clone())),
                    ("cycles", Value::Int(e.cycles as i64)),
                    (
                        "attribution",
                        Value::Obj(
                            e.attribution
                                .iter()
                                .map(|(k, &v)| (k.clone(), Value::Int(v as i64)))
                                .collect(),
                        ),
                    ),
                    (
                        "extras",
                        Value::Obj(
                            e.extras
                                .iter()
                                .map(|(k, &v)| (k.clone(), Value::Float(v)))
                                .collect(),
                        ),
                    ),
                ];
                if let Some(t) = &e.throughput {
                    fields.push(("throughput", throughput_json(t)));
                }
                Value::obj(fields)
            })
            .collect();
        Value::obj(vec![
            ("schema", Value::Str(BENCH_SCHEMA.to_string())),
            ("suite", Value::Str(self.suite.clone())),
            ("entries", Value::Arr(entries)),
        ])
    }

    /// Parses a document previously produced by [`BenchDoc::to_json`].
    /// Accepts the current schema and, for migration, v1 (whose
    /// `wall_ms` host timings are dropped and whose entries carry no
    /// throughput block).
    pub fn from_json(text: &str) -> Result<BenchDoc, String> {
        let v = parse(text)?;
        let schema = v
            .get("schema")
            .and_then(|s| s.as_str())
            .ok_or("missing schema")?;
        if schema != BENCH_SCHEMA && schema != BENCH_SCHEMA_V1 {
            return Err(format!(
                "schema mismatch: found {schema:?}, expected {BENCH_SCHEMA:?} (or {BENCH_SCHEMA_V1:?})"
            ));
        }
        let suite = v
            .get("suite")
            .and_then(|s| s.as_str())
            .ok_or("missing suite")?
            .to_string();
        let mut entries = Vec::new();
        for e in v
            .get("entries")
            .and_then(|a| a.as_arr())
            .ok_or("missing entries")?
        {
            let name = e
                .get("name")
                .and_then(|s| s.as_str())
                .ok_or("entry missing name")?
                .to_string();
            let cycles = e
                .get("cycles")
                .and_then(|c| c.as_i64())
                .ok_or("entry missing cycles")? as u64;
            let mut attribution = BTreeMap::new();
            if let Some(m) = e.get("attribution").and_then(|a| a.as_obj()) {
                for (k, v) in m {
                    attribution.insert(k.clone(), v.as_i64().unwrap_or(0) as u64);
                }
            }
            let mut extras = BTreeMap::new();
            if let Some(m) = e.get("extras").and_then(|a| a.as_obj()) {
                for (k, v) in m {
                    extras.insert(k.clone(), v.as_f64().unwrap_or(0.0));
                }
            }
            let throughput = match e.get("throughput") {
                Some(t) => Some(throughput_from(t)?),
                None => None,
            };
            entries.push(BenchEntry {
                name,
                cycles,
                attribution,
                extras,
                throughput,
            });
        }
        Ok(BenchDoc { suite, entries })
    }
}

/// Compares a fresh run against a baseline. Returns one message per
/// problem; empty result = pass.
///
/// Three gates, in decreasing strictness:
///
/// * an entry present in the baseline but missing from the new run
///   always fails;
/// * **checksums** (when both entries carry a throughput block) must
///   match exactly — they are virtual-state fingerprints, so any
///   difference means the engine computed something else;
/// * **cycles** may grow by at most `tol` (fractional, e.g. `0.25` =
///   +25%) — virtual cycles are deterministic, the tolerance only
///   absorbs deliberate timing-model changes;
/// * **host rates** (`cycles_per_sec` mean) may drop to no less than
///   `1 - host_tol` of the baseline mean — host timing is noisy and
///   machine-dependent, so `host_tol` should be generous (e.g. `0.5`).
///
/// Faster entries and brand-new entries never fail.
pub fn compare(baseline: &BenchDoc, fresh: &BenchDoc, tol: f64, host_tol: f64) -> Vec<String> {
    let mut problems = Vec::new();
    for old in &baseline.entries {
        let Some(new) = fresh.entry(&old.name) else {
            problems.push(format!(
                "{}: present in baseline but missing from new run",
                old.name
            ));
            continue;
        };
        let limit = old.cycles as f64 * (1.0 + tol);
        if new.cycles as f64 > limit {
            let ratio = if old.cycles == 0 {
                f64::INFINITY
            } else {
                new.cycles as f64 / old.cycles as f64
            };
            problems.push(format!(
                "{}: {} -> {} cycles ({:+.1}% > allowed {:+.1}%)",
                old.name,
                old.cycles,
                new.cycles,
                (ratio - 1.0) * 100.0,
                tol * 100.0
            ));
        }
        if let (Some(ot), Some(nt)) = (&old.throughput, &new.throughput) {
            if ot.checksum != nt.checksum {
                problems.push(format!(
                    "{}: determinism checksum {:#018x} -> {:#018x} (strict; the \
                     engine's virtual state diverged from the baseline)",
                    old.name, ot.checksum, nt.checksum
                ));
            }
            let floor = ot.cycles_per_sec.mean * (1.0 - host_tol);
            if nt.cycles_per_sec.mean < floor {
                problems.push(format!(
                    "{}: host throughput {:.3e} -> {:.3e} sim-cycles/sec \
                     (below {:.0}% of baseline)",
                    old.name,
                    ot.cycles_per_sec.mean,
                    nt.cycles_per_sec.mean,
                    (1.0 - host_tol) * 100.0
                ));
            }
        }
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;

    fn throughput(cy_rate: f64, checksum: u64) -> Throughput {
        Throughput {
            cycles_per_sec: Stat {
                mean: cy_rate,
                stddev: cy_rate * 0.01,
            },
            ops_per_sec: Stat {
                mean: cy_rate / 10.0,
                stddev: 0.0,
            },
            sim_cycles: 1000,
            sim_ops: 100,
            checksum,
            runs: 3,
            warmup: 1,
            setup: Some(Stat {
                mean: 0.002,
                stddev: 0.0001,
            }),
        }
    }

    fn entry(name: &str, cycles: u64) -> BenchEntry {
        BenchEntry {
            name: name.to_string(),
            cycles,
            attribution: [("compute".to_string(), cycles)].into_iter().collect(),
            extras: [("us_per_edge".to_string(), 1.5)].into_iter().collect(),
            throughput: Some(throughput(1.0e8, 0xFEED_FACE_CAFE_BEEF)),
        }
    }

    #[test]
    fn document_round_trips() {
        let mut doc = BenchDoc::new("micro");
        doc.entries.push(entry("remote.read.uncached", 912));
        doc.entries.push(entry("sync.barrier", 400));
        // Entries without a throughput block round-trip too.
        let mut bare = entry("no.throughput", 7);
        bare.throughput = None;
        doc.entries.push(bare);
        // ...and throughput blocks measured without the setup split.
        let mut nosetup = entry("no.setup", 9);
        nosetup.throughput.as_mut().unwrap().setup = None;
        doc.entries.push(nosetup);
        let text = doc.to_json().render_pretty();
        let back = BenchDoc::from_json(&text).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn checksum_survives_full_u64_range() {
        let mut doc = BenchDoc::new("micro");
        let mut e = entry("a", 1);
        e.throughput.as_mut().unwrap().checksum = u64::MAX;
        doc.entries.push(e);
        let back = BenchDoc::from_json(&doc.to_json().render_pretty()).unwrap();
        assert_eq!(
            back.entries[0].throughput.as_ref().unwrap().checksum,
            u64::MAX
        );
    }

    #[test]
    fn v1_documents_still_parse() {
        // A v1 document as `t3d-perf` used to write it: wall_ms present,
        // no throughput block.
        let text = "{\"schema\":\"t3d-perf-bench-v1\",\"suite\":\"micro\",\"entries\":[\
                    {\"name\":\"a\",\"cycles\":912,\
                    \"attribution\":{\"compute\":912},\
                    \"extras\":{\"remote_share\":0.5},\"wall_ms\":12.5}]}";
        let doc = BenchDoc::from_json(text).unwrap();
        assert_eq!(doc.suite, "micro");
        assert_eq!(doc.entries[0].cycles, 912);
        assert_eq!(doc.entries[0].throughput, None);
        // Re-serializing writes the current schema without wall_ms.
        let rendered = doc.to_json().render_pretty();
        assert!(rendered.contains(BENCH_SCHEMA));
        assert!(!rendered.contains("wall_ms"));
    }

    #[test]
    fn the_committed_v1_fixture_parses_and_compares() {
        // The last v1 document `t3d-perf` ever wrote, checked in
        // verbatim as the schema-migration fixture: it must keep
        // parsing, and a v1 baseline must gate cycles without
        // tripping the (absent) throughput gates.
        let doc = BenchDoc::from_json(include_str!("../fixtures/BENCH_micro_v1.json"))
            .expect("v1 fixture parses");
        assert_eq!(doc.suite, "micro");
        assert_eq!(doc.entries.len(), 13);
        assert!(doc.entries.iter().all(|e| e.throughput.is_none()));
        assert!(compare(&doc, &doc, 0.25, 0.5).is_empty());
    }

    #[test]
    fn the_committed_v2_nosetup_fixture_parses_and_compares() {
        // The last v2 document written before the throughput block grew
        // its `setup` field, checked in verbatim as the migration
        // fixture (same pattern as the v1 fixture above): it must keep
        // parsing — with `setup` absent mapping to `None` — and serve
        // as a baseline without tripping any gate.
        let doc = BenchDoc::from_json(include_str!("../fixtures/BENCH_micro_v2_nosetup.json"))
            .expect("v2-nosetup fixture parses");
        assert_eq!(doc.suite, "micro");
        assert_eq!(doc.entries.len(), 13);
        assert!(doc
            .entries
            .iter()
            .all(|e| e.throughput.as_ref().is_some_and(|t| t.setup.is_none())));
        assert!(compare(&doc, &doc, 0.25, 0.5).is_empty());
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let err = BenchDoc::from_json("{\"schema\":\"other\",\"suite\":\"x\",\"entries\":[]}")
            .unwrap_err();
        assert!(err.contains("schema mismatch"));
    }

    #[test]
    fn compare_flags_regressions_and_missing_entries() {
        let mut base = BenchDoc::new("micro");
        base.entries.push(entry("a", 1000));
        base.entries.push(entry("b", 1000));
        base.entries.push(entry("gone", 10));
        let mut fresh = BenchDoc::new("micro");
        fresh.entries.push(entry("a", 1200)); // within +25%
        fresh.entries.push(entry("b", 1300)); // over +25%
        fresh.entries.push(entry("brand-new", 1)); // never a failure
        let problems = compare(&base, &fresh, 0.25, 0.5);
        assert_eq!(problems.len(), 2);
        assert!(problems.iter().any(|p| p.starts_with("b:")));
        assert!(problems.iter().any(|p| p.starts_with("gone:")));
        // faster is always fine
        let mut faster = fresh.clone();
        faster.entries[1].cycles = 10;
        faster.entries.push(entry("gone", 10));
        assert!(compare(&base, &faster, 0.25, 0.5).is_empty());
    }

    #[test]
    fn compare_gates_checksums_strictly() {
        let mut base = BenchDoc::new("micro");
        base.entries.push(entry("a", 1000));
        let mut fresh = base.clone();
        fresh.entries[0].throughput.as_mut().unwrap().checksum ^= 1;
        let problems = compare(&base, &fresh, 0.25, 0.5);
        assert_eq!(problems.len(), 1);
        assert!(problems[0].contains("determinism checksum"));
    }

    #[test]
    fn compare_tolerates_host_noise_but_not_collapse() {
        let mut base = BenchDoc::new("micro");
        base.entries.push(entry("a", 1000));
        // 40% slower: inside a 50% host tolerance.
        let mut noisy = base.clone();
        noisy.entries[0]
            .throughput
            .as_mut()
            .unwrap()
            .cycles_per_sec
            .mean = 0.6e8;
        assert!(compare(&base, &noisy, 0.25, 0.5).is_empty());
        // 60% slower: outside it.
        let mut slow = base.clone();
        slow.entries[0]
            .throughput
            .as_mut()
            .unwrap()
            .cycles_per_sec
            .mean = 0.4e8;
        let problems = compare(&base, &slow, 0.25, 0.5);
        assert_eq!(problems.len(), 1);
        assert!(problems[0].contains("host throughput"));
    }

    #[test]
    fn compare_skips_host_gates_when_a_side_has_no_throughput() {
        let mut base = BenchDoc::new("micro");
        base.entries.push(entry("a", 1000));
        let mut fresh = base.clone();
        fresh.entries[0].throughput = None;
        assert!(compare(&base, &fresh, 0.25, 0.5).is_empty());
        assert!(compare(&fresh, &base, 0.25, 0.5).is_empty());
    }
}
