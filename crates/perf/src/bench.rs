//! Perf-trajectory bench documents (`BENCH_*.json`) and the regression
//! comparator.
//!
//! Virtual-cycle totals are deterministic, so they are compared with a
//! tolerance only to absorb deliberate timing-model changes; host
//! wall-clock is recorded for context but never compared.

use std::collections::BTreeMap;

use crate::json::{parse, Value};

/// Document schema tag, bumped on incompatible layout changes.
pub const BENCH_SCHEMA: &str = "t3d-perf-bench-v1";

/// One benchmark's record.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// Stable benchmark name (the compare key).
    pub name: String,
    /// Total virtual cycles — the compared figure of merit.
    pub cycles: u64,
    /// Cycle attribution by cost-class label (non-zero classes only).
    pub attribution: BTreeMap<String, u64>,
    /// Extra derived metrics (e.g. `us_per_edge`), informational.
    pub extras: BTreeMap<String, f64>,
    /// Host wall-clock for the run, milliseconds. Informational only:
    /// never compared, varies run to run.
    pub wall_ms: f64,
}

/// A suite of benchmark records.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchDoc {
    /// Suite name (`"em3d"`, `"micro"`).
    pub suite: String,
    /// The entries, in run order.
    pub entries: Vec<BenchEntry>,
}

impl BenchDoc {
    /// An empty document for `suite`.
    pub fn new(suite: &str) -> BenchDoc {
        BenchDoc {
            suite: suite.to_string(),
            entries: Vec::new(),
        }
    }

    /// Looks up an entry by name.
    pub fn entry(&self, name: &str) -> Option<&BenchEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// Exports the document as JSON.
    pub fn to_json(&self) -> Value {
        let entries = self
            .entries
            .iter()
            .map(|e| {
                Value::obj(vec![
                    ("name", Value::Str(e.name.clone())),
                    ("cycles", Value::Int(e.cycles as i64)),
                    (
                        "attribution",
                        Value::Obj(
                            e.attribution
                                .iter()
                                .map(|(k, &v)| (k.clone(), Value::Int(v as i64)))
                                .collect(),
                        ),
                    ),
                    (
                        "extras",
                        Value::Obj(
                            e.extras
                                .iter()
                                .map(|(k, &v)| (k.clone(), Value::Float(v)))
                                .collect(),
                        ),
                    ),
                    ("wall_ms", Value::Float(e.wall_ms)),
                ])
            })
            .collect();
        Value::obj(vec![
            ("schema", Value::Str(BENCH_SCHEMA.to_string())),
            ("suite", Value::Str(self.suite.clone())),
            ("entries", Value::Arr(entries)),
        ])
    }

    /// Parses a document previously produced by [`BenchDoc::to_json`].
    pub fn from_json(text: &str) -> Result<BenchDoc, String> {
        let v = parse(text)?;
        let schema = v
            .get("schema")
            .and_then(|s| s.as_str())
            .ok_or("missing schema")?;
        if schema != BENCH_SCHEMA {
            return Err(format!(
                "schema mismatch: found {schema:?}, expected {BENCH_SCHEMA:?}"
            ));
        }
        let suite = v
            .get("suite")
            .and_then(|s| s.as_str())
            .ok_or("missing suite")?
            .to_string();
        let mut entries = Vec::new();
        for e in v
            .get("entries")
            .and_then(|a| a.as_arr())
            .ok_or("missing entries")?
        {
            let name = e
                .get("name")
                .and_then(|s| s.as_str())
                .ok_or("entry missing name")?
                .to_string();
            let cycles = e
                .get("cycles")
                .and_then(|c| c.as_i64())
                .ok_or("entry missing cycles")? as u64;
            let mut attribution = BTreeMap::new();
            if let Some(m) = e.get("attribution").and_then(|a| a.as_obj()) {
                for (k, v) in m {
                    attribution.insert(k.clone(), v.as_i64().unwrap_or(0) as u64);
                }
            }
            let mut extras = BTreeMap::new();
            if let Some(m) = e.get("extras").and_then(|a| a.as_obj()) {
                for (k, v) in m {
                    extras.insert(k.clone(), v.as_f64().unwrap_or(0.0));
                }
            }
            let wall_ms = e.get("wall_ms").and_then(|w| w.as_f64()).unwrap_or(0.0);
            entries.push(BenchEntry {
                name,
                cycles,
                attribution,
                extras,
                wall_ms,
            });
        }
        Ok(BenchDoc { suite, entries })
    }
}

/// Compares a fresh run against a baseline. Returns one message per
/// problem: an entry whose cycle count grew by more than `tol`
/// (fractional, e.g. `0.25` = +25%), or an entry present in the baseline
/// but missing from the new run. Faster entries and brand-new entries
/// never fail. Empty result = pass.
pub fn compare(baseline: &BenchDoc, fresh: &BenchDoc, tol: f64) -> Vec<String> {
    let mut problems = Vec::new();
    for old in &baseline.entries {
        let Some(new) = fresh.entry(&old.name) else {
            problems.push(format!(
                "{}: present in baseline but missing from new run",
                old.name
            ));
            continue;
        };
        let limit = old.cycles as f64 * (1.0 + tol);
        if new.cycles as f64 > limit {
            let ratio = if old.cycles == 0 {
                f64::INFINITY
            } else {
                new.cycles as f64 / old.cycles as f64
            };
            problems.push(format!(
                "{}: {} -> {} cycles ({:+.1}% > allowed {:+.1}%)",
                old.name,
                old.cycles,
                new.cycles,
                (ratio - 1.0) * 100.0,
                tol * 100.0
            ));
        }
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(name: &str, cycles: u64) -> BenchEntry {
        BenchEntry {
            name: name.to_string(),
            cycles,
            attribution: [("compute".to_string(), cycles)].into_iter().collect(),
            extras: [("us_per_edge".to_string(), 1.5)].into_iter().collect(),
            wall_ms: 12.5,
        }
    }

    #[test]
    fn document_round_trips() {
        let mut doc = BenchDoc::new("micro");
        doc.entries.push(entry("remote.read.uncached", 912));
        doc.entries.push(entry("sync.barrier", 400));
        let text = doc.to_json().render_pretty();
        let back = BenchDoc::from_json(&text).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let err = BenchDoc::from_json("{\"schema\":\"other\",\"suite\":\"x\",\"entries\":[]}")
            .unwrap_err();
        assert!(err.contains("schema mismatch"));
    }

    #[test]
    fn compare_flags_regressions_and_missing_entries() {
        let mut base = BenchDoc::new("micro");
        base.entries.push(entry("a", 1000));
        base.entries.push(entry("b", 1000));
        base.entries.push(entry("gone", 10));
        let mut fresh = BenchDoc::new("micro");
        fresh.entries.push(entry("a", 1200)); // within +25%
        fresh.entries.push(entry("b", 1300)); // over +25%
        fresh.entries.push(entry("brand-new", 1)); // never a failure
        let problems = compare(&base, &fresh, 0.25);
        assert_eq!(problems.len(), 2);
        assert!(problems.iter().any(|p| p.starts_with("b:")));
        assert!(problems.iter().any(|p| p.starts_with("gone:")));
        // faster is always fine
        let mut faster = fresh.clone();
        faster.entries[1].cycles = 10;
        faster.entries.push(entry("gone", 10));
        assert!(compare(&base, &faster, 0.25).is_empty());
    }
}
