//! t3d-perf — the observability layer of the T3D reproduction.
//!
//! The paper's whole method is *attribution*: decomposing every observed
//! latency into cache, write-buffer, DRAM-page, shell-launch and
//! network-hop components so the compiler knows where cycles go. The
//! simulator computes all of those costs internally; this crate keeps
//! the breakdown instead of throwing it away.
//!
//! Three pieces, all deterministic:
//!
//! * a **cycle-attribution ledger** ([`Ledger`]): every timing decision
//!   in the memory system, shell and torus credits its cycles to a typed
//!   [`CostClass`], accumulated per PE and per phase. The conservation
//!   invariant — the sum of all buckets equals the elapsed virtual
//!   cycles — is pinned by tests;
//! * a **metrics registry** ([`Registry`]): named counters, gauges and
//!   log₂-bucketed latency histograms ([`Hist`], with p50/p95/p99),
//!   assembled per PE and merged in PE order so sequential and parallel
//!   phase drivers produce bit-identical reports;
//! * **exporters**: a rendered text report ([`PerfReport::render`]),
//!   machine-readable JSON ([`json`]), a `chrome://tracing` timeline
//!   ([`chrome`]) and the `BENCH_*.json` perf-trajectory documents with
//!   a tolerance-based regression comparator ([`mod@bench`]).
//!
//! Attribution is pure observation: crediting a ledger never changes a
//! clock, so `T3D_PERF=0` runs are bit-identical to an uninstrumented
//! build, and `T3D_PERF>=1` runs report bit-identically under both
//! `T3D_PAR` drivers (each PE's ledger lives in node-owned state that
//! the sharded phase engine already keeps thread-private).
//!
//! This crate is a leaf: it depends on nothing, so every layer of the
//! simulator (memsys, machine, splitc, em3d) can feed it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod chrome;
pub mod hist;
pub mod json;
pub mod ledger;
pub mod registry;
pub mod report;
pub mod throughput;

pub use bench::{compare, BenchDoc, BenchEntry};
pub use chrome::{chrome_trace, Span};
pub use hist::Hist;
pub use ledger::{CostClass, Ledger, OpHists, OpKind, PerfAccum, COST_CLASSES, OP_KINDS};
pub use registry::Registry;
pub use report::{PePerf, PerfReport, PhaseLog, PhaseRecord};
pub use throughput::{
    measure, measure_split, RunSample, SplitSample, Stat, Throughput, ThroughputSpec,
};

/// How much observability a run collects. Mirrors the `T3D_SAN`
/// precedent: an environment knob (`T3D_PERF`) fills in the default,
/// explicit configuration wins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PerfMode {
    /// No collection (zero overhead beyond one branch per credit site).
    #[default]
    Off,
    /// Cycle-attribution ledgers, counters and histograms.
    Counters,
    /// Counters plus the event timeline (the machine's tracer is
    /// enabled so a Chrome trace can be exported).
    Timeline,
}

impl PerfMode {
    /// Parses the `T3D_PERF` environment variable: `0`/`off` → [`Off`],
    /// `1`/`counters` → [`Counters`], `2`/`timeline` → [`Timeline`].
    /// Returns `None` when unset or unrecognized.
    ///
    /// [`Off`]: PerfMode::Off
    /// [`Counters`]: PerfMode::Counters
    /// [`Timeline`]: PerfMode::Timeline
    pub fn from_env() -> Option<PerfMode> {
        match std::env::var("T3D_PERF")
            .ok()?
            .to_ascii_lowercase()
            .as_str()
        {
            "0" | "off" => Some(PerfMode::Off),
            "1" | "counters" => Some(PerfMode::Counters),
            "2" | "timeline" => Some(PerfMode::Timeline),
            _ => None,
        }
    }

    /// The mode in force: a deliberate configuration keeps its choice,
    /// the `T3D_PERF` environment variable fills in the default
    /// ([`PerfMode::Off`]) so profiling can be switched on suite-wide.
    pub fn effective(configured: PerfMode) -> PerfMode {
        match configured {
            PerfMode::Off => Self::from_env().unwrap_or(PerfMode::Off),
            set => set,
        }
    }

    /// Whether ledgers, counters and histograms are collected.
    pub fn counters(self) -> bool {
        self != PerfMode::Off
    }

    /// Whether the event timeline is collected too.
    pub fn timeline(self) -> bool {
        self == PerfMode::Timeline
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_mode_wins_over_default() {
        assert_eq!(PerfMode::effective(PerfMode::Counters), PerfMode::Counters);
        assert_eq!(PerfMode::effective(PerfMode::Timeline), PerfMode::Timeline);
    }

    #[test]
    fn mode_predicates() {
        assert!(!PerfMode::Off.counters());
        assert!(PerfMode::Counters.counters());
        assert!(!PerfMode::Counters.timeline());
        assert!(PerfMode::Timeline.counters());
        assert!(PerfMode::Timeline.timeline());
    }
}
