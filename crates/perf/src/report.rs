//! Assembled perf reports: per-PE attribution, per-phase attribution,
//! and the metrics registry, with text and JSON renderings.

use crate::json::Value;
use crate::ledger::Ledger;
use crate::registry::Registry;
use crate::PerfMode;

/// One PE's share of the report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PePerf {
    /// The PE number.
    pub pe: usize,
    /// Virtual cycles elapsed on this PE since collection (re)started.
    pub elapsed: u64,
    /// Where those cycles went (node + memory-port ledgers merged).
    pub ledger: Ledger,
}

/// Attribution for one named phase, merged over all its occurrences.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseRecord {
    /// The phase label.
    pub label: String,
    /// How many times a phase with this label ran.
    pub occurrences: u64,
    /// Total cycles spent across occurrences (per the reference clock
    /// handed to [`PhaseLog::begin`]/[`PhaseLog::end`]).
    pub cycles: u64,
    /// Attribution of those cycles (ledger delta across the phase,
    /// summed over all PEs and occurrences).
    pub ledger: Ledger,
    /// `(start, end)` reference-clock spans, one per occurrence, in
    /// execution order (feeds the Chrome-trace exporter).
    pub spans: Vec<(u64, u64)>,
}

#[derive(Debug)]
struct OpenPhase {
    label: String,
    start: u64,
    snap: Ledger,
}

/// A flat (non-nesting) log of named phases.
///
/// The machine layer calls [`begin`](PhaseLog::begin) /
/// [`end`](PhaseLog::end) with its reference clock (the max PE clock)
/// and a snapshot of the merged all-PE ledger; the log stores the delta.
/// Beginning a phase while one is open implicitly ends the open one, so
/// sloppy instrumentation degrades gracefully instead of panicking.
#[derive(Debug, Default)]
pub struct PhaseLog {
    open: Option<OpenPhase>,
    records: Vec<PhaseRecord>,
}

impl PhaseLog {
    /// Opens a phase at reference clock `now` with the current merged
    /// ledger `snapshot`. Ends any phase still open.
    pub fn begin(&mut self, label: &str, now: u64, snapshot: Ledger) {
        if self.open.is_some() {
            self.end(now, snapshot);
        }
        self.open = Some(OpenPhase {
            label: label.to_string(),
            start: now,
            snap: snapshot,
        });
    }

    /// Closes the open phase at reference clock `now`, crediting it the
    /// ledger delta since its `begin` snapshot. No-op when nothing is
    /// open. Records with the same label merge.
    pub fn end(&mut self, now: u64, snapshot: Ledger) {
        let Some(open) = self.open.take() else {
            return;
        };
        let delta = snapshot.since(&open.snap);
        let cycles = now.saturating_sub(open.start);
        match self.records.iter_mut().find(|r| r.label == open.label) {
            Some(r) => {
                r.occurrences += 1;
                r.cycles += cycles;
                r.ledger.merge(&delta);
                r.spans.push((open.start, now));
            }
            None => self.records.push(PhaseRecord {
                label: open.label,
                occurrences: 1,
                cycles,
                ledger: delta,
                spans: vec![(open.start, now)],
            }),
        }
    }

    /// Whether a phase is currently open.
    pub fn is_open(&self) -> bool {
        self.open.is_some()
    }

    /// The completed records, in first-occurrence order.
    pub fn records(&self) -> &[PhaseRecord] {
        &self.records
    }

    /// Drops everything, including any open phase.
    pub fn clear(&mut self) {
        self.open = None;
        self.records.clear();
    }
}

/// A complete perf report for one machine, assembled by
/// `Machine::perf()`.
///
/// Everything inside is deterministic: PEs are listed in PE order, the
/// registry sorts by name, and ledgers rank with a label tiebreak — so
/// sequential and parallel phase-driver runs render bit-identically.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfReport {
    /// The collection mode the report was taken under.
    pub mode: PerfMode,
    /// Per-PE elapsed cycles and attribution.
    pub pes: Vec<PePerf>,
    /// Per-phase attribution (empty when the program marked no phases).
    pub phases: Vec<PhaseRecord>,
    /// Named counters, gauges and latency histograms.
    pub registry: Registry,
}

impl PerfReport {
    /// All PEs' ledgers merged into one.
    pub fn merged(&self) -> Ledger {
        let mut out = Ledger::default();
        for pe in &self.pes {
            out.merge(&pe.ledger);
        }
        out
    }

    /// Total attributed cycles across all PEs (equals the sum of per-PE
    /// elapsed cycles under the conservation invariant).
    pub fn total(&self) -> u64 {
        self.merged().total()
    }

    /// Fraction of attributed cycles spent in remote-access classes
    /// (0.0 when nothing was attributed).
    pub fn remote_share(&self) -> f64 {
        let m = self.merged();
        let total = m.total();
        if total == 0 {
            0.0
        } else {
            m.remote_total() as f64 / total as f64
        }
    }

    /// Renders the human-readable report.
    pub fn render(&self) -> String {
        let mode = match self.mode {
            PerfMode::Off => "off",
            PerfMode::Counters => "counters",
            PerfMode::Timeline => "timeline",
        };
        let mut out = String::new();
        out.push_str(&format!(
            "t3d-perf report (mode: {mode}, pes: {})\n",
            self.pes.len()
        ));
        let merged = self.merged();
        out.push_str(&format!(
            "attributed: {} cycles across {} PEs (remote share {:.1}%)\n",
            merged.total(),
            self.pes.len(),
            self.remote_share() * 100.0
        ));
        out.push_str(&render_ledger(&merged, "  "));
        if !self.phases.is_empty() {
            out.push_str("phases:\n");
            for p in &self.phases {
                out.push_str(&format!(
                    "  {} (x{}, {} cycles):\n",
                    p.label, p.occurrences, p.cycles
                ));
                out.push_str(&render_ledger(&p.ledger, "    "));
            }
        }
        let reg = self.registry.render();
        if !reg.is_empty() {
            out.push_str(&reg);
        }
        out
    }

    /// Exports the report as a JSON object.
    pub fn to_json(&self) -> Value {
        let mode = match self.mode {
            PerfMode::Off => "off",
            PerfMode::Counters => "counters",
            PerfMode::Timeline => "timeline",
        };
        let pes = Value::Arr(
            self.pes
                .iter()
                .map(|p| {
                    Value::obj(vec![
                        ("pe", Value::Int(p.pe as i64)),
                        ("elapsed", Value::Int(p.elapsed as i64)),
                        ("attribution", ledger_json(&p.ledger)),
                    ])
                })
                .collect(),
        );
        let phases = Value::Arr(
            self.phases
                .iter()
                .map(|p| {
                    Value::obj(vec![
                        ("label", Value::Str(p.label.clone())),
                        ("occurrences", Value::Int(p.occurrences as i64)),
                        ("cycles", Value::Int(p.cycles as i64)),
                        ("attribution", ledger_json(&p.ledger)),
                        (
                            "spans",
                            Value::Arr(
                                p.spans
                                    .iter()
                                    .map(|&(s, e)| {
                                        Value::Arr(vec![Value::Int(s as i64), Value::Int(e as i64)])
                                    })
                                    .collect(),
                            ),
                        ),
                    ])
                })
                .collect(),
        );
        Value::obj(vec![
            ("mode", Value::Str(mode.to_string())),
            ("total_cycles", Value::Int(self.total() as i64)),
            ("pes", pes),
            ("phases", phases),
            ("registry", self.registry.to_json()),
        ])
    }
}

/// Renders a ledger as ranked `label cycles percent` lines.
pub fn render_ledger(ledger: &Ledger, indent: &str) -> String {
    let total = ledger.total();
    let mut out = String::new();
    for (class, cy) in ledger.ranked() {
        let pct = if total == 0 {
            0.0
        } else {
            cy as f64 / total as f64 * 100.0
        };
        out.push_str(&format!(
            "{indent}{:<18} {cy:>12}  {pct:>5.1}%\n",
            class.label()
        ));
    }
    out
}

/// Exports a ledger's non-zero buckets as a JSON object keyed by class
/// label, in ledger order (BTreeMap re-sorts by label — still
/// deterministic).
pub fn ledger_json(ledger: &Ledger) -> Value {
    Value::Obj(
        ledger
            .entries()
            .map(|(c, cy)| (c.label().to_string(), Value::Int(cy as i64)))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ledger::CostClass;

    fn ledger(pairs: &[(CostClass, u64)]) -> Ledger {
        let mut l = Ledger::default();
        for &(c, cy) in pairs {
            l.add(c, cy);
        }
        l
    }

    #[test]
    fn phase_log_merges_by_label() {
        let mut log = PhaseLog::default();
        let mut snap = Ledger::default();
        log.begin("push", 0, snap);
        snap.add(CostClass::NetHop, 10);
        log.end(100, snap);
        log.begin("pull", 100, snap);
        snap.add(CostClass::Compute, 5);
        log.end(150, snap);
        log.begin("push", 150, snap);
        snap.add(CostClass::NetHop, 7);
        log.end(250, snap);
        let recs = log.records();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].label, "push");
        assert_eq!(recs[0].occurrences, 2);
        assert_eq!(recs[0].cycles, 200);
        assert_eq!(recs[0].ledger.get(CostClass::NetHop), 17);
        assert_eq!(recs[0].spans, vec![(0, 100), (150, 250)]);
        assert_eq!(recs[1].label, "pull");
        assert_eq!(recs[1].ledger.get(CostClass::Compute), 5);
    }

    #[test]
    fn begin_while_open_closes_implicitly() {
        let mut log = PhaseLog::default();
        let snap = Ledger::default();
        log.begin("a", 0, snap);
        log.begin("b", 50, snap);
        assert!(log.is_open());
        log.end(80, snap);
        assert_eq!(log.records().len(), 2);
        assert_eq!(log.records()[0].cycles, 50);
        assert_eq!(log.records()[1].cycles, 30);
        // end with nothing open is a quiet no-op
        log.end(90, snap);
        assert_eq!(log.records().len(), 2);
    }

    #[test]
    fn report_merges_and_renders() {
        let report = PerfReport {
            mode: PerfMode::Counters,
            pes: vec![
                PePerf {
                    pe: 0,
                    elapsed: 30,
                    ledger: ledger(&[(CostClass::Compute, 20), (CostClass::NetHop, 10)]),
                },
                PePerf {
                    pe: 1,
                    elapsed: 10,
                    ledger: ledger(&[(CostClass::NetHop, 10)]),
                },
            ],
            phases: vec![],
            registry: Registry::default(),
        };
        assert_eq!(report.total(), 40);
        assert_eq!(report.merged().get(CostClass::NetHop), 20);
        assert!((report.remote_share() - 0.5).abs() < 1e-12);
        let text = report.render();
        assert!(text.contains("net-hop"));
        assert!(text.contains("50.0%"));
        let js = report.to_json();
        assert_eq!(js.get("total_cycles").unwrap().as_i64(), Some(40));
    }
}
