//! The cycle-attribution ledger: typed cost classes and per-PE
//! accumulators.

use crate::hist::Hist;

/// Number of [`CostClass`] variants (the ledger's bucket count).
pub const COST_CLASSES: usize = 25;

/// Where a cycle went. Every clock advance in the simulator credits
/// exactly one class, so per-PE bucket sums equal elapsed virtual time
/// (the conservation invariant).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CostClass {
    /// Explicitly charged computation (`advance`), including runtime
    /// loop overheads and modeled FLOPs.
    Compute,
    /// DTB-Annex register updates (23 cy each).
    AnnexUpdate,
    /// TLB translation cycles (misses; hits are free).
    Tlb,
    /// L1 cache hits.
    L1Hit,
    /// L2 cache hits (workstation configuration only).
    L2Hit,
    /// Local DRAM accesses that hit the open page.
    DramPageHit,
    /// Local DRAM accesses that opened a new page on an idle bank.
    DramPageMiss,
    /// Local DRAM accesses that opened a new page on the busy bank.
    DramBankBusy,
    /// Write-buffer store issue (the steady-state store cost).
    WbufIssue,
    /// Stalls waiting for a free write-buffer entry.
    WbufStall,
    /// Memory-barrier drains of the write buffer.
    WbufDrain,
    /// Shell request launch overhead (remote read/write engines, plus
    /// the cached-read line-fill extra).
    ShellLaunch,
    /// Torus wire time (round trips and one-way hops).
    NetHop,
    /// DRAM time at the *remote* node, paid by the requester.
    RemoteDram,
    /// Queueing at a busy remote shell (contention modeling).
    Contention,
    /// Spinning on the remote-write status bit (polls and waits).
    AckWait,
    /// Prefetch-queue issue slots.
    PrefetchIssue,
    /// Prefetch-queue pops, including waiting for data to arrive.
    PrefetchWait,
    /// BLT OS-invocation start-up stalls (~180 µs).
    BltStartup,
    /// Waiting for an outstanding BLT stream to complete.
    BltWait,
    /// Message-send PAL calls.
    MsgSend,
    /// Message-receive interrupts (and handler dispatch).
    MsgRecv,
    /// Atomic-operation extra latency (fetch&inc, swap).
    Amo,
    /// Barrier instruction overhead (start + end costs).
    BarrierOverhead,
    /// Waiting at a barrier for the last arrival.
    BarrierWait,
}

impl CostClass {
    /// Every class, in ledger order.
    pub const ALL: [CostClass; COST_CLASSES] = [
        CostClass::Compute,
        CostClass::AnnexUpdate,
        CostClass::Tlb,
        CostClass::L1Hit,
        CostClass::L2Hit,
        CostClass::DramPageHit,
        CostClass::DramPageMiss,
        CostClass::DramBankBusy,
        CostClass::WbufIssue,
        CostClass::WbufStall,
        CostClass::WbufDrain,
        CostClass::ShellLaunch,
        CostClass::NetHop,
        CostClass::RemoteDram,
        CostClass::Contention,
        CostClass::AckWait,
        CostClass::PrefetchIssue,
        CostClass::PrefetchWait,
        CostClass::BltStartup,
        CostClass::BltWait,
        CostClass::MsgSend,
        CostClass::MsgRecv,
        CostClass::Amo,
        CostClass::BarrierOverhead,
        CostClass::BarrierWait,
    ];

    /// Stable kebab-case label (report and JSON key).
    pub fn label(self) -> &'static str {
        match self {
            CostClass::Compute => "compute",
            CostClass::AnnexUpdate => "annex-update",
            CostClass::Tlb => "tlb",
            CostClass::L1Hit => "l1-hit",
            CostClass::L2Hit => "l2-hit",
            CostClass::DramPageHit => "dram-page-hit",
            CostClass::DramPageMiss => "dram-page-miss",
            CostClass::DramBankBusy => "dram-bank-busy",
            CostClass::WbufIssue => "wbuf-issue",
            CostClass::WbufStall => "wbuf-stall",
            CostClass::WbufDrain => "wbuf-drain",
            CostClass::ShellLaunch => "shell-launch",
            CostClass::NetHop => "net-hop",
            CostClass::RemoteDram => "remote-dram",
            CostClass::Contention => "contention",
            CostClass::AckWait => "ack-wait",
            CostClass::PrefetchIssue => "prefetch-issue",
            CostClass::PrefetchWait => "prefetch-wait",
            CostClass::BltStartup => "blt-startup",
            CostClass::BltWait => "blt-wait",
            CostClass::MsgSend => "msg-send",
            CostClass::MsgRecv => "msg-recv",
            CostClass::Amo => "amo",
            CostClass::BarrierOverhead => "barrier-overhead",
            CostClass::BarrierWait => "barrier-wait",
        }
    }

    /// Whether this class is part of the *remote access* budget — the
    /// cycles a PE spends on communication rather than local work (the
    /// Figure 9 story told via attribution).
    pub fn is_remote(self) -> bool {
        matches!(
            self,
            CostClass::ShellLaunch
                | CostClass::NetHop
                | CostClass::RemoteDram
                | CostClass::Contention
                | CostClass::AckWait
                | CostClass::PrefetchIssue
                | CostClass::PrefetchWait
                | CostClass::BltStartup
                | CostClass::BltWait
                | CostClass::Amo
        )
    }

    fn index(self) -> usize {
        Self::ALL.iter().position(|&c| c == self).unwrap()
    }
}

/// A fixed-size cycle ledger: one bucket per [`CostClass`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ledger {
    cy: [u64; COST_CLASSES],
}

impl Default for Ledger {
    fn default() -> Self {
        Ledger {
            cy: [0; COST_CLASSES],
        }
    }
}

impl Ledger {
    /// Credits `cycles` to `class`.
    #[inline]
    pub fn add(&mut self, class: CostClass, cycles: u64) {
        self.cy[class.index()] += cycles;
    }

    /// Cycles credited to `class` so far.
    pub fn get(&self, class: CostClass) -> u64 {
        self.cy[class.index()]
    }

    /// Sum over every bucket. Under the conservation invariant this
    /// equals the PE's elapsed virtual cycles since enablement.
    pub fn total(&self) -> u64 {
        self.cy.iter().sum()
    }

    /// Sum over the remote-access classes (see [`CostClass::is_remote`]).
    pub fn remote_total(&self) -> u64 {
        CostClass::ALL
            .iter()
            .filter(|c| c.is_remote())
            .map(|&c| self.get(c))
            .sum()
    }

    /// Adds another ledger bucket-wise.
    pub fn merge(&mut self, other: &Ledger) {
        for (a, b) in self.cy.iter_mut().zip(other.cy.iter()) {
            *a += b;
        }
    }

    /// Bucket-wise difference `self - earlier` (the attribution of the
    /// interval between two snapshots). Saturates at zero, though under
    /// monotone accumulation the difference is exact.
    pub fn since(&self, earlier: &Ledger) -> Ledger {
        let mut out = Ledger::default();
        for (i, (a, b)) in self.cy.iter().zip(earlier.cy.iter()).enumerate() {
            out.cy[i] = a.saturating_sub(*b);
        }
        out
    }

    /// Non-zero buckets, in ledger order.
    pub fn entries(&self) -> impl Iterator<Item = (CostClass, u64)> + '_ {
        CostClass::ALL
            .iter()
            .map(|&c| (c, self.get(c)))
            .filter(|&(_, cy)| cy > 0)
    }

    /// Non-zero buckets, largest first (label as tiebreaker, so the
    /// order is deterministic).
    pub fn ranked(&self) -> Vec<(CostClass, u64)> {
        let mut v: Vec<_> = self.entries().collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.label().cmp(b.0.label())));
        v
    }

    /// Clears every bucket.
    pub fn clear(&mut self) {
        self.cy = [0; COST_CLASSES];
    }
}

/// Number of [`OpKind`] variants (latency-histogram lanes).
pub const OP_KINDS: usize = 15;

/// Operation kinds with per-op latency histograms in the registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Local load.
    LdLocal,
    /// Remote (annex-translated) load.
    LdRemote,
    /// Local store.
    StLocal,
    /// Remote store (issue cost; the latency is asynchronous).
    StRemote,
    /// Memory barrier.
    Fence,
    /// Write-acknowledgement wait.
    AckWait,
    /// Prefetch issue.
    Fetch,
    /// Prefetch-queue pop.
    Pop,
    /// Fetch&increment.
    FetchInc,
    /// Atomic swap.
    Swap,
    /// Message send.
    MsgSend,
    /// Message receive.
    MsgRecv,
    /// BLT start (OS invocation).
    BltStart,
    /// BLT completion wait.
    BltWait,
    /// Global barrier episode.
    Barrier,
}

impl OpKind {
    /// Every kind, in lane order.
    pub const ALL: [OpKind; OP_KINDS] = [
        OpKind::LdLocal,
        OpKind::LdRemote,
        OpKind::StLocal,
        OpKind::StRemote,
        OpKind::Fence,
        OpKind::AckWait,
        OpKind::Fetch,
        OpKind::Pop,
        OpKind::FetchInc,
        OpKind::Swap,
        OpKind::MsgSend,
        OpKind::MsgRecv,
        OpKind::BltStart,
        OpKind::BltWait,
        OpKind::Barrier,
    ];

    /// Stable registry key (`lat.` prefix added by the report builder).
    pub fn label(self) -> &'static str {
        match self {
            OpKind::LdLocal => "ld.local",
            OpKind::LdRemote => "ld.remote",
            OpKind::StLocal => "st.local",
            OpKind::StRemote => "st.remote",
            OpKind::Fence => "fence",
            OpKind::AckWait => "ack.wait",
            OpKind::Fetch => "fetch",
            OpKind::Pop => "pop",
            OpKind::FetchInc => "fetch-inc",
            OpKind::Swap => "swap",
            OpKind::MsgSend => "msg.send",
            OpKind::MsgRecv => "msg.recv",
            OpKind::BltStart => "blt.start",
            OpKind::BltWait => "blt.wait",
            OpKind::Barrier => "barrier",
        }
    }

    fn index(self) -> usize {
        Self::ALL.iter().position(|&k| k == self).unwrap()
    }
}

/// Per-op-kind latency histograms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpHists {
    lanes: [Hist; OP_KINDS],
}

impl Default for OpHists {
    fn default() -> Self {
        OpHists {
            lanes: [Hist::default(); OP_KINDS],
        }
    }
}

impl OpHists {
    /// Records one operation's cost.
    #[inline]
    pub fn record(&mut self, kind: OpKind, cycles: u64) {
        self.lanes[kind.index()].record(cycles);
    }

    /// The histogram for one kind.
    pub fn get(&self, kind: OpKind) -> &Hist {
        &self.lanes[kind.index()]
    }

    /// Merges another set lane-wise.
    pub fn merge(&mut self, other: &OpHists) {
        for (a, b) in self.lanes.iter_mut().zip(other.lanes.iter()) {
            a.merge(b);
        }
    }

    /// Clears every lane.
    pub fn clear(&mut self) {
        self.lanes = [Hist::default(); OP_KINDS];
    }
}

/// A PE's perf accumulator: the on/off gate, the attribution baseline,
/// the ledger and the latency histograms. Owned by node state so the
/// sharded phase engine carries it thread-privately — sequential and
/// parallel drivers accumulate identically.
#[derive(Debug, Clone, Default)]
pub struct PerfAccum {
    /// Whether credits are collected.
    pub on: bool,
    /// The PE's clock when collection was (re)enabled; elapsed =
    /// clock − base.
    pub base_clock: u64,
    /// The attribution ledger.
    pub ledger: Ledger,
    /// Per-op latency histograms.
    pub hists: OpHists,
}

impl PerfAccum {
    /// Credits cycles to a class (no-op when off or zero).
    #[inline]
    pub fn credit(&mut self, class: CostClass, cycles: u64) {
        if self.on && cycles > 0 {
            self.ledger.add(class, cycles);
        }
    }

    /// Records one operation's total cost (no-op when off).
    #[inline]
    pub fn sample(&mut self, kind: OpKind, cycles: u64) {
        if self.on {
            self.hists.record(kind, cycles);
        }
    }

    /// (Re)starts collection with a fresh ledger, baselined at `clock`;
    /// `on = false` stops collection and clears the state.
    pub fn restart(&mut self, on: bool, clock: u64) {
        self.on = on;
        self.base_clock = clock;
        self.ledger.clear();
        self.hists.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_class_has_a_distinct_label_and_index() {
        let mut labels: Vec<&str> = CostClass::ALL.iter().map(|c| c.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), COST_CLASSES);
        for (i, c) in CostClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn ledger_arithmetic() {
        let mut a = Ledger::default();
        a.add(CostClass::Compute, 10);
        a.add(CostClass::NetHop, 5);
        let snap = a;
        a.add(CostClass::NetHop, 7);
        assert_eq!(a.total(), 22);
        assert_eq!(a.since(&snap).get(CostClass::NetHop), 7);
        assert_eq!(a.since(&snap).total(), 7);
        assert_eq!(a.remote_total(), 12);
        let mut b = Ledger::default();
        b.merge(&a);
        b.merge(&a);
        assert_eq!(b.total(), 44);
        assert_eq!(a.ranked()[0].0, CostClass::NetHop);
    }

    #[test]
    fn accum_gates_on_flag() {
        let mut p = PerfAccum::default();
        p.credit(CostClass::Compute, 5);
        p.sample(OpKind::LdLocal, 5);
        assert_eq!(p.ledger.total(), 0);
        assert_eq!(p.hists.get(OpKind::LdLocal).count(), 0);
        p.restart(true, 100);
        p.credit(CostClass::Compute, 5);
        p.sample(OpKind::LdLocal, 5);
        assert_eq!(p.ledger.total(), 5);
        assert_eq!(p.base_clock, 100);
        assert_eq!(p.hists.get(OpKind::LdLocal).count(), 1);
    }
}
