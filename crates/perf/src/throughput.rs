//! Host-throughput measurement: sim-cycles and Split-C ops per host
//! second, with a determinism guard.
//!
//! The BENCH documents record *virtual* cycles, which are deterministic
//! and compared strictly — but nothing there says how fast the engine
//! itself runs. This module times repeated executions of a benchmark on
//! the host clock and reports rates, so host-speed regressions become
//! visible and optimization wins provable.
//!
//! Method (the PF-008 guest-CPU suite shape): `warmup` discarded runs
//! bring caches and allocators to steady state, then `runs` measured
//! runs each produce a rate sample; the document records mean and
//! population standard deviation. Every run — warmup included — must
//! report the same virtual-cycle total, op count and FNV checksum as
//! the first, so a fast-but-wrong engine fails the measurement instead
//! of posting a great number.

use std::time::Instant;

/// How a throughput measurement is shaped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThroughputSpec {
    /// Discarded warm-up runs before timing starts.
    pub warmup: u32,
    /// Measured runs (each contributes one rate sample).
    pub runs: u32,
}

impl Default for ThroughputSpec {
    fn default() -> Self {
        ThroughputSpec { warmup: 1, runs: 3 }
    }
}

/// What one benchmark execution reports back to [`measure`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunSample {
    /// Total virtual cycles the run executed (deterministic).
    pub sim_cycles: u64,
    /// Total simulated operations (loads, stores, syncs…; deterministic).
    pub sim_ops: u64,
    /// FNV determinism checksum over the run's final machine state.
    pub checksum: u64,
}

/// A mean and population standard deviation over the measured runs.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Stat {
    /// Arithmetic mean of the samples.
    pub mean: f64,
    /// Population standard deviation of the samples.
    pub stddev: f64,
}

impl Stat {
    /// Computes mean and population stddev of `samples`.
    pub fn of(samples: &[f64]) -> Stat {
        if samples.is_empty() {
            return Stat::default();
        }
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n;
        Stat {
            mean,
            stddev: var.sqrt(),
        }
    }
}

/// A completed throughput measurement (the `throughput` block of a
/// `t3d-perf-bench-v2` entry).
#[derive(Debug, Clone, PartialEq)]
pub struct Throughput {
    /// Simulated cycles per host second across the measured runs.
    pub cycles_per_sec: Stat,
    /// Simulated operations per host second across the measured runs.
    pub ops_per_sec: Stat,
    /// Virtual cycles per run (identical across runs by construction).
    pub sim_cycles: u64,
    /// Simulated operations per run (identical across runs).
    pub sim_ops: u64,
    /// The FNV determinism checksum every run reproduced.
    pub checksum: u64,
    /// Number of measured runs.
    pub runs: u32,
    /// Number of discarded warm-up runs.
    pub warmup: u32,
}

/// Runs `run` `spec.warmup + spec.runs` times, timing the measured runs
/// on the host clock. Errors when any run's cycles, op count or
/// checksum diverges from the first run's — the determinism guard that
/// makes the rates trustworthy.
pub fn measure(
    spec: ThroughputSpec,
    mut run: impl FnMut() -> RunSample,
) -> Result<Throughput, String> {
    assert!(spec.runs > 0, "at least one measured run");
    let mut reference: Option<RunSample> = None;
    let mut cy_rates = Vec::with_capacity(spec.runs as usize);
    let mut op_rates = Vec::with_capacity(spec.runs as usize);
    for i in 0..spec.warmup + spec.runs {
        let t = Instant::now();
        let sample = run();
        let secs = t.elapsed().as_secs_f64().max(1e-9);
        let reference = reference.get_or_insert(sample);
        if sample != *reference {
            return Err(format!(
                "nondeterministic benchmark: run {i} produced cycles={} ops={} \
                 checksum={:#018x}, expected cycles={} ops={} checksum={:#018x}",
                sample.sim_cycles,
                sample.sim_ops,
                sample.checksum,
                reference.sim_cycles,
                reference.sim_ops,
                reference.checksum,
            ));
        }
        if i >= spec.warmup {
            cy_rates.push(sample.sim_cycles as f64 / secs);
            op_rates.push(sample.sim_ops as f64 / secs);
        }
    }
    let reference = reference.expect("at least one run executed");
    Ok(Throughput {
        cycles_per_sec: Stat::of(&cy_rates),
        ops_per_sec: Stat::of(&op_rates),
        sim_cycles: reference.sim_cycles,
        sim_ops: reference.sim_ops,
        checksum: reference.checksum,
        runs: spec.runs,
        warmup: spec.warmup,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stat_of_constant_samples_has_zero_stddev() {
        let s = Stat::of(&[5.0, 5.0, 5.0]);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(Stat::of(&[]), Stat::default());
    }

    #[test]
    fn stat_of_computes_population_stddev() {
        let s = Stat::of(&[1.0, 3.0]);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.stddev, 1.0);
    }

    #[test]
    fn measure_reports_identical_deterministic_runs() {
        let spec = ThroughputSpec { warmup: 2, runs: 3 };
        let mut calls = 0u32;
        let t = measure(spec, || {
            calls += 1;
            RunSample {
                sim_cycles: 1000,
                sim_ops: 10,
                checksum: 0xDEAD,
            }
        })
        .unwrap();
        assert_eq!(calls, 5, "warmup + measured runs all execute");
        assert_eq!(t.sim_cycles, 1000);
        assert_eq!(t.sim_ops, 10);
        assert_eq!(t.checksum, 0xDEAD);
        assert_eq!(t.runs, 3);
        assert_eq!(t.warmup, 2);
        assert!(t.cycles_per_sec.mean > 0.0);
        assert!(t.ops_per_sec.mean > 0.0);
    }

    #[test]
    fn measure_rejects_checksum_divergence() {
        let spec = ThroughputSpec { warmup: 0, runs: 3 };
        let mut calls = 0u64;
        let err = measure(spec, || {
            calls += 1;
            RunSample {
                sim_cycles: 1000,
                sim_ops: 10,
                checksum: calls, // diverges on run 1
            }
        })
        .unwrap_err();
        assert!(
            err.contains("nondeterministic benchmark"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn measure_rejects_cycle_divergence_in_warmup() {
        let spec = ThroughputSpec { warmup: 1, runs: 1 };
        let mut calls = 0u64;
        let err = measure(spec, || {
            calls += 1;
            RunSample {
                sim_cycles: calls,
                sim_ops: 10,
                checksum: 7,
            }
        })
        .unwrap_err();
        assert!(err.contains("run 1"), "unexpected error: {err}");
    }
}
