//! Host-throughput measurement: sim-cycles and Split-C ops per host
//! second, with a determinism guard.
//!
//! The BENCH documents record *virtual* cycles, which are deterministic
//! and compared strictly — but nothing there says how fast the engine
//! itself runs. This module times repeated executions of a benchmark on
//! the host clock and reports rates, so host-speed regressions become
//! visible and optimization wins provable.
//!
//! Method (the PF-008 guest-CPU suite shape): `warmup` discarded runs
//! bring caches and allocators to steady state, then `runs` measured
//! runs each produce a rate sample; the document records mean and
//! population standard deviation. Every run — warmup included — must
//! report the same virtual-cycle total, op count and FNV checksum as
//! the first, so a fast-but-wrong engine fails the measurement instead
//! of posting a great number.

use std::time::Instant;

/// How a throughput measurement is shaped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThroughputSpec {
    /// Discarded warm-up runs before timing starts.
    pub warmup: u32,
    /// Measured runs (each contributes one rate sample).
    pub runs: u32,
}

impl Default for ThroughputSpec {
    fn default() -> Self {
        ThroughputSpec { warmup: 1, runs: 3 }
    }
}

/// What one benchmark execution reports back to [`measure`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunSample {
    /// Total virtual cycles the run executed (deterministic).
    pub sim_cycles: u64,
    /// Total simulated operations (loads, stores, syncs…; deterministic).
    pub sim_ops: u64,
    /// FNV determinism checksum over the run's final machine state.
    pub checksum: u64,
}

/// What one benchmark execution reports back to [`measure_split`]: the
/// deterministic run totals plus how much of the run's wall time was
/// measurement apparatus — setup (machine construction, arena
/// allocation) and verification (snapshotting and checksumming the
/// final state) — rather than simulation. Those seconds are excluded
/// from the rate denominators, so the published cycles/sec measures
/// the engine, not the allocator or the checksummer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SplitSample {
    /// The deterministic totals of the run.
    pub sample: RunSample,
    /// Host seconds the run spent outside simulation (setup before it,
    /// state checksumming after it).
    pub setup_secs: f64,
}

/// A mean and population standard deviation over the measured runs.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Stat {
    /// Arithmetic mean of the samples.
    pub mean: f64,
    /// Population standard deviation of the samples.
    pub stddev: f64,
}

impl Stat {
    /// Computes mean and population stddev of `samples`.
    pub fn of(samples: &[f64]) -> Stat {
        if samples.is_empty() {
            return Stat::default();
        }
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n;
        Stat {
            mean,
            stddev: var.sqrt(),
        }
    }
}

/// A completed throughput measurement (the `throughput` block of a
/// `t3d-perf-bench-v2` entry).
#[derive(Debug, Clone, PartialEq)]
pub struct Throughput {
    /// Simulated cycles per host second across the measured runs.
    pub cycles_per_sec: Stat,
    /// Simulated operations per host second across the measured runs.
    pub ops_per_sec: Stat,
    /// Virtual cycles per run (identical across runs by construction).
    pub sim_cycles: u64,
    /// Simulated operations per run (identical across runs).
    pub sim_ops: u64,
    /// The FNV determinism checksum every run reproduced.
    pub checksum: u64,
    /// Number of measured runs.
    pub runs: u32,
    /// Number of discarded warm-up runs.
    pub warmup: u32,
    /// Host seconds per run spent outside simulation — setup (machine
    /// construction, arena allocation) plus final-state checksumming —
    /// excluded from the rate denominators. `None` when the benchmark
    /// was measured with [`measure`], which has no such split —
    /// documents written before the split parse back as `None` too, so
    /// the field is additive within the v2 schema.
    pub setup: Option<Stat>,
}

/// Runs `run` `spec.warmup + spec.runs` times, timing the measured runs
/// on the host clock. Errors when any run's cycles, op count or
/// checksum diverges from the first run's — the determinism guard that
/// makes the rates trustworthy.
pub fn measure(
    spec: ThroughputSpec,
    mut run: impl FnMut() -> RunSample,
) -> Result<Throughput, String> {
    let mut t = measure_split(spec, || SplitSample {
        sample: run(),
        setup_secs: 0.0,
    })?;
    t.setup = None;
    Ok(t)
}

/// Like [`measure`], but each run reports how much of its wall time was
/// one-time setup; that time is subtracted from the rate denominators
/// and published as the `setup` stat. The determinism guard is the
/// same: any divergence in cycles, ops or checksum fails the
/// measurement.
pub fn measure_split(
    spec: ThroughputSpec,
    mut run: impl FnMut() -> SplitSample,
) -> Result<Throughput, String> {
    assert!(spec.runs > 0, "at least one measured run");
    let mut reference: Option<RunSample> = None;
    let mut cy_rates = Vec::with_capacity(spec.runs as usize);
    let mut op_rates = Vec::with_capacity(spec.runs as usize);
    let mut setups = Vec::with_capacity(spec.runs as usize);
    for i in 0..spec.warmup + spec.runs {
        let t = Instant::now();
        let split = run();
        let elapsed = t.elapsed().as_secs_f64();
        let secs = (elapsed - split.setup_secs).max(1e-9);
        let sample = split.sample;
        let reference = reference.get_or_insert(sample);
        if sample != *reference {
            return Err(format!(
                "nondeterministic benchmark: run {i} produced cycles={} ops={} \
                 checksum={:#018x}, expected cycles={} ops={} checksum={:#018x}",
                sample.sim_cycles,
                sample.sim_ops,
                sample.checksum,
                reference.sim_cycles,
                reference.sim_ops,
                reference.checksum,
            ));
        }
        if i >= spec.warmup {
            cy_rates.push(sample.sim_cycles as f64 / secs);
            op_rates.push(sample.sim_ops as f64 / secs);
            setups.push(split.setup_secs);
        }
    }
    let reference = reference.expect("at least one run executed");
    Ok(Throughput {
        cycles_per_sec: Stat::of(&cy_rates),
        ops_per_sec: Stat::of(&op_rates),
        sim_cycles: reference.sim_cycles,
        sim_ops: reference.sim_ops,
        checksum: reference.checksum,
        runs: spec.runs,
        warmup: spec.warmup,
        setup: Some(Stat::of(&setups)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stat_of_constant_samples_has_zero_stddev() {
        let s = Stat::of(&[5.0, 5.0, 5.0]);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(Stat::of(&[]), Stat::default());
    }

    #[test]
    fn stat_of_computes_population_stddev() {
        let s = Stat::of(&[1.0, 3.0]);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.stddev, 1.0);
    }

    #[test]
    fn measure_reports_identical_deterministic_runs() {
        let spec = ThroughputSpec { warmup: 2, runs: 3 };
        let mut calls = 0u32;
        let t = measure(spec, || {
            calls += 1;
            RunSample {
                sim_cycles: 1000,
                sim_ops: 10,
                checksum: 0xDEAD,
            }
        })
        .unwrap();
        assert_eq!(calls, 5, "warmup + measured runs all execute");
        assert_eq!(t.sim_cycles, 1000);
        assert_eq!(t.sim_ops, 10);
        assert_eq!(t.checksum, 0xDEAD);
        assert_eq!(t.runs, 3);
        assert_eq!(t.warmup, 2);
        assert!(t.cycles_per_sec.mean > 0.0);
        assert!(t.ops_per_sec.mean > 0.0);
    }

    #[test]
    fn measure_leaves_setup_unset() {
        let t = measure(ThroughputSpec { warmup: 0, runs: 1 }, || RunSample {
            sim_cycles: 1,
            sim_ops: 1,
            checksum: 0,
        })
        .unwrap();
        assert!(t.setup.is_none());
    }

    #[test]
    fn measure_split_excludes_setup_from_rates() {
        // The run sleeps 20 ms and declares 19 ms of it as setup. With
        // setup excluded the rate denominator is the (sub-millisecond)
        // residual, so the measured rate must beat the rate a
        // full-elapsed denominator could ever produce. Sleep is a lower
        // bound on elapsed time, so the comparison is safe unless the
        // scheduler overshoots the sleep by 19 ms.
        let spec = ThroughputSpec { warmup: 0, runs: 2 };
        let t = measure_split(spec, || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            SplitSample {
                sample: RunSample {
                    sim_cycles: 1000,
                    sim_ops: 10,
                    checksum: 0xBEEF,
                },
                setup_secs: 0.019,
            }
        })
        .unwrap();
        let setup = t.setup.expect("split measurement records a setup stat");
        assert!((setup.mean - 0.019).abs() < 1e-12, "setup = {setup:?}");
        assert!(
            t.cycles_per_sec.mean > t.sim_cycles as f64 / setup.mean,
            "rate {} does not reflect setup exclusion",
            t.cycles_per_sec.mean
        );
        assert_eq!(t.checksum, 0xBEEF);
    }

    #[test]
    fn measure_split_guards_determinism() {
        let mut calls = 0u64;
        let err = measure_split(ThroughputSpec { warmup: 0, runs: 2 }, || {
            calls += 1;
            SplitSample {
                sample: RunSample {
                    sim_cycles: calls,
                    sim_ops: 1,
                    checksum: 0,
                },
                setup_secs: 0.0,
            }
        })
        .unwrap_err();
        assert!(err.contains("nondeterministic"), "unexpected error: {err}");
    }

    #[test]
    fn measure_rejects_checksum_divergence() {
        let spec = ThroughputSpec { warmup: 0, runs: 3 };
        let mut calls = 0u64;
        let err = measure(spec, || {
            calls += 1;
            RunSample {
                sim_cycles: 1000,
                sim_ops: 10,
                checksum: calls, // diverges on run 1
            }
        })
        .unwrap_err();
        assert!(
            err.contains("nondeterministic benchmark"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn measure_rejects_cycle_divergence_in_warmup() {
        let spec = ThroughputSpec { warmup: 1, runs: 1 };
        let mut calls = 0u64;
        let err = measure(spec, || {
            calls += 1;
            RunSample {
                sim_cycles: calls,
                sim_ops: 10,
                checksum: 7,
            }
        })
        .unwrap_err();
        assert!(err.contains("run 1"), "unexpected error: {err}");
    }
}
