//! t3dsan — a happens-before hazard analyzer for the simulated T3D.
//!
//! The paper's central correctness lesson (§3.4, §4) is that the T3D
//! shell shifts synchronization onto the *compiler*: a get whose
//! `sync()` never ran, a signaling store read before `storeSync`, or
//! two annex registers naming the same PE all silently return stale
//! data. The machine reproduces those hazards; this crate *detects*
//! them.
//!
//! Two front ends feed one diagnostic vocabulary ([`DiagKind`]):
//!
//! * The **split-phase analyzer** ([`Sanitizer`]) consumes source-tagged
//!   events ([`SanEvent`]) emitted by the instrumented `splitc` runtime.
//!   It maintains one vector clock per PE, advanced on every operation
//!   and joined across the sync edges the paper names — get `sync()`,
//!   `storeSync`/`allStoreSync`, barriers, AM deposit→dispatch pairs and
//!   lock transfer — plus shadow write records per address range. Reads
//!   are checked against un-synced or vector-clock-concurrent writes.
//! * The **trace scanner** ([`trace_scan::scan_trace`]) runs the same
//!   checks, more coarsely, straight over the machine's architectural
//!   trace (`t3d_machine::TraceEvent`) — useful for raw shell programs
//!   that never go through the runtime.
//!
//! Enable it through `SplitcConfig::sanitize` or the `T3D_SAN`
//! environment variable (`1`/`collect` to collect, `panic` to abort on
//! the first finding). Per-PE event logs are merged by
//! `(time, pe, seq)` — the same discipline the sharded phase engine
//! uses for its effect log — so sequential and parallel phase drivers
//! produce bit-identical reports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analyzer;
mod clock;
mod event;
mod report;
pub mod trace_scan;

pub use analyzer::Sanitizer;
pub use clock::VectorClock;
pub use event::{SanEvent, SanLog, SanOp, WriteKind, NO_REG};
pub use report::{DiagKind, Diagnostic, Report};

/// How the sanitizer behaves when wired into a runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SanitizeMode {
    /// No instrumentation, no analysis (zero overhead).
    #[default]
    Off,
    /// Analyze and collect diagnostics; never interrupt the program.
    Collect,
    /// Analyze and panic on the first diagnostic (after the machine has
    /// been left in a defined state).
    Panic,
}

impl SanitizeMode {
    /// Parses the `T3D_SAN` environment variable: `0`/`off` → [`Off`],
    /// `1`/`collect` → [`Collect`], `2`/`panic` → [`Panic`]. Returns
    /// `None` when unset or unrecognized.
    ///
    /// [`Off`]: SanitizeMode::Off
    /// [`Collect`]: SanitizeMode::Collect
    /// [`Panic`]: SanitizeMode::Panic
    pub fn from_env() -> Option<SanitizeMode> {
        match std::env::var("T3D_SAN").ok()?.to_ascii_lowercase().as_str() {
            "0" | "off" => Some(SanitizeMode::Off),
            "1" | "collect" => Some(SanitizeMode::Collect),
            "2" | "panic" => Some(SanitizeMode::Panic),
            _ => None,
        }
    }

    /// The mode in force. A program that picked a mode explicitly keeps
    /// it; the `T3D_SAN` environment variable fills in the default
    /// ([`SanitizeMode::Off`]), so an env knob can switch on the
    /// sanitizer suite-wide without silently demoting a deliberate
    /// `Panic` (or promoting a hazard-replay `Collect`) configuration.
    pub fn effective(configured: SanitizeMode) -> SanitizeMode {
        match configured {
            SanitizeMode::Off => SanitizeMode::from_env().unwrap_or(SanitizeMode::Off),
            explicit => explicit,
        }
    }

    /// Whether events should be recorded at all.
    pub fn is_on(self) -> bool {
        self != SanitizeMode::Off
    }
}
