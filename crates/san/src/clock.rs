//! Vector clocks: the partial order the analyzer reasons in.

/// A per-PE vector clock. Component `i` counts events PE `i` has
/// performed that the clock's owner has (transitively) synchronized
/// with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VectorClock(Vec<u64>);

impl VectorClock {
    /// The zero clock over `n` PEs.
    pub fn new(n: usize) -> Self {
        VectorClock(vec![0; n])
    }

    /// Component `pe`.
    pub fn get(&self, pe: usize) -> u64 {
        self.0[pe]
    }

    /// Advances the owner's own component.
    pub fn tick(&mut self, pe: usize) {
        self.0[pe] += 1;
    }

    /// Elementwise maximum with `other` (a sync edge into the owner).
    pub fn join(&mut self, other: &VectorClock) {
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a = (*a).max(*b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_and_join_order_events() {
        let mut a = VectorClock::new(3);
        let mut b = VectorClock::new(3);
        a.tick(0);
        a.tick(0);
        // b has not synchronized with a: a's epoch is invisible.
        assert!(b.get(0) < a.get(0));
        b.join(&a);
        assert_eq!(b.get(0), 2, "join sees a's history");
        b.tick(1);
        assert_eq!(b.get(1), 1);
        assert_eq!(a.get(1), 0, "joins are one-directional");
    }
}
