//! The split-phase happens-before analyzer.
//!
//! State per PE: a vector clock, the set of annex-buffered (unfenced)
//! remote stores, the outstanding get FIFO and its local landing
//! ranges. State per address range: shadow write records carrying the
//! writer's clock snapshot and a synced bit. Sync edges join clocks;
//! reads and writes are checked against the shadow state.

use std::collections::{HashMap, HashSet, VecDeque};

use crate::clock::VectorClock;
use crate::event::{merge_logs, SanEvent, SanOp, WriteKind, NO_REG};
use crate::report::{DiagKind, Diagnostic, Report};
use crate::SanitizeMode;

/// A shadow record for one write's byte range.
#[derive(Debug, Clone)]
struct WriteRec {
    writer: u32,
    target: u32,
    addr: u64,
    len: u64,
    kind: WriteKind,
    /// Writer's own clock component at the write (the epoch).
    epoch: u64,
    /// Full clock snapshot (joined into the target at `store_sync`).
    vc: VectorClock,
    /// Whether the bytes are guaranteed visible to their target.
    synced: bool,
    /// Global ingest index (orders writes against cache fills/gets).
    idx: u64,
    source: &'static str,
    time: u64,
}

/// An annex-buffered store not yet fenced out of the write buffer.
#[derive(Debug, Clone, Copy)]
struct PendingStore {
    target: u32,
    reg: u32,
}

/// One outstanding split-phase get.
#[derive(Debug, Clone, Copy)]
struct GetRec {
    target: u32,
    addr: u64,
    len: u64,
    local_off: u64,
    idx: u64,
    time: u64,
    source: &'static str,
}

/// A line some PE brought into its L1 with a cached read.
#[derive(Debug, Clone, Copy)]
struct CachedLine {
    reader: u32,
    target: u32,
    line_addr: u64,
    /// Global ingest index of the fill: writes after it are invisible.
    fill_idx: u64,
}

fn overlap(a: u64, alen: u64, b: u64, blen: u64) -> bool {
    a < b + blen && b < a + alen
}

/// The happens-before analyzer (see the crate docs for the model).
#[derive(Debug, Clone)]
pub struct Sanitizer {
    mode: SanitizeMode,
    nodes: usize,
    line_bytes: u64,
    idx: u64,
    events_processed: u64,
    vc: Vec<VectorClock>,
    writes: Vec<WriteRec>,
    pending_annex: Vec<Vec<PendingStore>>,
    pending_gets: Vec<Vec<GetRec>>,
    cached: Vec<CachedLine>,
    am_vcs: Vec<VecDeque<VectorClock>>,
    locks: HashMap<(u32, u64), VectorClock>,
    diagnostics: Vec<Diagnostic>,
    seen: HashSet<(DiagKind, u32, u32, u64, &'static str)>,
    reported: usize,
}

impl Sanitizer {
    /// An analyzer over `nodes` PEs with 32-byte cache lines.
    pub fn new(nodes: usize, mode: SanitizeMode) -> Self {
        Sanitizer::with_line_bytes(nodes, mode, 32)
    }

    /// An analyzer with an explicit L1 line size.
    pub fn with_line_bytes(nodes: usize, mode: SanitizeMode, line_bytes: u64) -> Self {
        Sanitizer {
            mode,
            nodes,
            line_bytes,
            idx: 0,
            events_processed: 0,
            vc: (0..nodes).map(|_| VectorClock::new(nodes)).collect(),
            writes: Vec::new(),
            pending_annex: vec![Vec::new(); nodes],
            pending_gets: vec![Vec::new(); nodes],
            cached: Vec::new(),
            am_vcs: (0..nodes).map(|_| VecDeque::new()).collect(),
            locks: HashMap::new(),
            diagnostics: Vec::new(),
            seen: HashSet::new(),
            reported: 0,
        }
    }

    /// The behaviour mode in force.
    pub fn mode(&self) -> SanitizeMode {
        self.mode
    }

    /// Applies a batch of events already in analysis order.
    pub fn ingest(&mut self, events: impl IntoIterator<Item = SanEvent>) {
        for ev in events {
            self.apply(&ev);
        }
    }

    /// Merges per-PE logs by `(time, pe, seq)` — the sharded engine's
    /// effect-log order — and applies them. Bit-identical for
    /// sequential and parallel phase drivers.
    pub fn ingest_logs(&mut self, logs: Vec<Vec<SanEvent>>) {
        self.ingest(merge_logs(logs));
    }

    /// A machine-wide barrier (`barrier`/`all_store_sync`): fences every
    /// write buffer, makes every prior write visible, and joins all
    /// clocks.
    pub fn global_barrier(&mut self) {
        let mut joined = VectorClock::new(self.nodes);
        for c in &self.vc {
            joined.join(c);
        }
        for pe in 0..self.nodes {
            self.vc[pe] = joined.clone();
            self.vc[pe].tick(pe);
        }
        for w in &mut self.writes {
            w.synced = true;
        }
        for p in &mut self.pending_annex {
            p.clear();
        }
        // Outstanding gets survive: their values still sit in the
        // prefetch queue until the issuer's own sync().
    }

    /// The findings so far.
    pub fn report(&self) -> Report {
        Report {
            diagnostics: self.diagnostics.clone(),
            events_processed: self.events_processed,
        }
    }

    /// The raw diagnostics so far.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// In [`SanitizeMode::Panic`], panics if any diagnostic was found
    /// since the last check. Call only after runtime state is restored
    /// to a defined configuration.
    ///
    /// # Panics
    ///
    /// Panics with the rendered diagnostic(s) in panic mode.
    pub fn check(&mut self) {
        if self.mode != SanitizeMode::Panic || self.diagnostics.len() == self.reported {
            self.reported = self.diagnostics.len();
            return;
        }
        let fresh: Vec<String> = self.diagnostics[self.reported..]
            .iter()
            .map(|d| d.to_string())
            .collect();
        self.reported = self.diagnostics.len();
        panic!("t3dsan: {}", fresh.join("; "));
    }

    fn diag(
        &mut self,
        kind: DiagKind,
        ev: &SanEvent,
        target: u32,
        addr: u64,
        detail: impl FnOnce() -> String,
    ) {
        let key = (kind, ev.pe, target, addr, ev.source);
        if !self.seen.insert(key) {
            for d in &mut self.diagnostics {
                if (d.kind, d.pe, d.target, d.addr, d.source) == key {
                    d.count += 1;
                    return;
                }
            }
            return;
        }
        self.diagnostics.push(Diagnostic {
            kind,
            pe: ev.pe,
            target,
            addr,
            time: ev.time,
            source: ev.source,
            count: 1,
            detail: detail(),
        });
    }

    /// Synonym trap: any access to `target` through `reg` while this PE
    /// still has buffered stores to the same target through another
    /// register.
    fn check_synonym(&mut self, ev: &SanEvent, target: u32, addr: u64, reg: u32) {
        if reg == NO_REG || target == ev.pe {
            return;
        }
        let other = self.pending_annex[ev.pe as usize]
            .iter()
            .find(|p| p.target == target && p.reg != reg && p.reg != NO_REG)
            .map(|p| p.reg);
        if let Some(o) = other {
            self.diag(DiagKind::AnnexSynonymHazard, ev, target, addr, || {
                format!("annex reg {reg} while stores via reg {o} are still buffered")
            });
        }
    }

    /// Stale-data checks common to every read flavour.
    fn check_read(&mut self, ev: &SanEvent, target: u32, addr: u64, len: u64) {
        // Un-synced writes by someone else covering these bytes.
        let hit = self
            .writes
            .iter()
            .find(|w| {
                w.target == target
                    && !w.synced
                    && w.writer != ev.pe
                    && overlap(w.addr, w.len, addr, len)
            })
            .map(|w| (w.writer, w.kind, w.source));
        if let Some((writer, kind, src)) = hit {
            self.diag(DiagKind::StaleStoreRead, ev, target, addr, || {
                let fix = match kind {
                    WriteKind::Put => "writer has not sync()ed",
                    WriteKind::Store => "target has not store_sync()ed",
                    WriteKind::Blocking => "write still buffered",
                };
                format!("un-synced {src} by PE {writer} ({fix})")
            });
        }
        // A stale line in the reader's own L1: filled before a later
        // write to the same bytes (even a completed one).
        if target != ev.pe {
            let line = self
                .cached
                .iter()
                .find(|c| {
                    c.reader == ev.pe
                        && c.target == target
                        && overlap(c.line_addr, self.line_bytes, addr, len)
                })
                .copied();
            if let Some(c) = line {
                let newer = self
                    .writes
                    .iter()
                    .find(|w| {
                        w.target == target
                            && w.idx > c.fill_idx
                            && w.writer != ev.pe
                            && overlap(w.addr, w.len, addr, len)
                    })
                    .map(|w| (w.writer, w.source));
                if let Some((writer, src)) = newer {
                    self.diag(DiagKind::StaleStoreRead, ev, target, addr, || {
                        format!(
                            "cached line predates {src} by PE {writer} (flush_remote_line first)"
                        )
                    });
                }
            }
        }
        // Reading a get's landing word before sync().
        if target == ev.pe {
            let pending = self.pending_gets[ev.pe as usize]
                .iter()
                .find(|g| overlap(g.local_off, g.len, addr, len))
                .map(|g| (g.target, g.addr));
            if let Some((gt, ga)) = pending {
                self.diag(DiagKind::ReadBeforeGetSync, ev, target, addr, || {
                    format!("landing word of get from PE {gt} addr {ga:#x} read before sync()")
                });
            }
        }
    }

    fn apply(&mut self, ev: &SanEvent) {
        assert!((ev.pe as usize) < self.nodes, "event from unknown PE");
        self.events_processed += 1;
        self.idx += 1;
        let idx = self.idx;
        let pe = ev.pe as usize;
        self.vc[pe].tick(pe);
        match ev.op {
            SanOp::Read {
                target,
                addr,
                len,
                reg,
            } => {
                self.check_synonym(ev, target, addr, reg);
                self.check_read(ev, target, addr, len);
            }
            SanOp::CachedRead {
                target,
                addr,
                len,
                reg,
            } => {
                self.check_synonym(ev, target, addr, reg);
                self.check_read(ev, target, addr, len);
                let line_addr = addr & !(self.line_bytes - 1);
                let already = self
                    .cached
                    .iter()
                    .any(|c| c.reader == ev.pe && c.target == target && c.line_addr == line_addr);
                if !already {
                    self.cached.push(CachedLine {
                        reader: ev.pe,
                        target,
                        line_addr,
                        fill_idx: idx,
                    });
                }
            }
            SanOp::CacheFlush { target, addr } => {
                let line_addr = addr & !(self.line_bytes - 1);
                self.cached.retain(|c| {
                    !(c.reader == ev.pe && c.target == target && c.line_addr == line_addr)
                });
            }
            SanOp::Write {
                target,
                addr,
                len,
                kind,
                reg,
            } => {
                self.check_synonym(ev, target, addr, reg);
                // Unordered overlapping write by another PE?
                let conflict = self
                    .writes
                    .iter()
                    .find(|w| {
                        w.target == target
                            && w.writer != ev.pe
                            && overlap(w.addr, w.len, addr, len)
                            && self.vc[pe].get(w.writer as usize) < w.epoch
                    })
                    .map(|w| (w.writer, w.source));
                if let Some((writer, src)) = conflict {
                    self.diag(DiagKind::ConflictingPuts, ev, target, addr, || {
                        format!("unordered against {src} by PE {writer}: final bytes depend on arrival order")
                    });
                }
                // Replace happened-before records this write fully covers.
                let vc = &self.vc[pe];
                self.writes.retain(|w| {
                    !(w.target == target
                        && addr <= w.addr
                        && w.addr + w.len <= addr + len
                        && vc.get(w.writer as usize) >= w.epoch)
                });
                self.writes.push(WriteRec {
                    writer: ev.pe,
                    target,
                    addr,
                    len,
                    kind,
                    epoch: self.vc[pe].get(pe),
                    vc: self.vc[pe].clone(),
                    synced: kind == WriteKind::Blocking,
                    idx,
                    source: ev.source,
                    time: ev.time,
                });
                if kind == WriteKind::Blocking {
                    // The trailing fence + ack wait drains the buffer.
                    self.pending_annex[pe].clear();
                } else if target != ev.pe {
                    self.pending_annex[pe].push(PendingStore { target, reg });
                }
            }
            SanOp::GetIssue {
                target,
                addr,
                len,
                local_off,
                reg,
            } => {
                self.check_synonym(ev, target, addr, reg);
                self.check_read(ev, target, addr, len);
                self.pending_gets[pe].push(GetRec {
                    target,
                    addr,
                    len,
                    local_off,
                    idx,
                    time: ev.time,
                    source: ev.source,
                });
            }
            SanOp::GetSync | SanOp::GetDrain => {
                self.complete_gets(ev);
                if ev.op == SanOp::GetSync {
                    // Fence + ack wait: the issuer's own puts/stores land.
                    for w in &mut self.writes {
                        if w.writer == ev.pe {
                            w.synced = true;
                        }
                    }
                }
                self.pending_annex[pe].clear();
            }
            SanOp::StoreSyncWait => {
                let mut joined = VectorClock::new(self.nodes);
                let mut any = false;
                for w in &mut self.writes {
                    if w.target == ev.pe && w.kind == WriteKind::Store && !w.synced {
                        w.synced = true;
                        joined.join(&w.vc);
                        any = true;
                    }
                }
                if any {
                    self.vc[pe].join(&joined);
                }
            }
            SanOp::AmDeposit { target } => {
                let snap = self.vc[pe].clone();
                self.am_vcs[target as usize].push_back(snap);
                // The deposit protocol fences and waits for acks.
                for w in &mut self.writes {
                    if w.writer == ev.pe {
                        w.synced = true;
                    }
                }
                self.pending_annex[pe].clear();
            }
            SanOp::AmDispatch { count } => {
                for _ in 0..count {
                    if let Some(v) = self.am_vcs[pe].pop_front() {
                        self.vc[pe].join(&v);
                    }
                }
            }
            SanOp::LockAcquire { target, addr } => {
                if let Some(v) = self.locks.get(&(target, addr)) {
                    let v = v.clone();
                    self.vc[pe].join(&v);
                }
            }
            SanOp::LockRelease { target, addr } => {
                let snap = self.vc[pe].clone();
                self.locks
                    .entry((target, addr))
                    .and_modify(|v| v.join(&snap))
                    .or_insert(snap);
            }
        }
    }

    /// Completes the issuer's outstanding gets: checks each for an
    /// intervening write to its source, then retires them.
    fn complete_gets(&mut self, ev: &SanEvent) {
        let pe = ev.pe as usize;
        let gets = std::mem::take(&mut self.pending_gets[pe]);
        for g in &gets {
            let newer = self
                .writes
                .iter()
                .find(|w| {
                    w.target == g.target && w.idx > g.idx && overlap(w.addr, w.len, g.addr, g.len)
                })
                .map(|w| (w.writer, w.source, w.time));
            if let Some((writer, src, wt)) = newer {
                let gev = SanEvent {
                    pe: ev.pe,
                    time: ev.time,
                    seq: ev.seq,
                    op: ev.op,
                    source: g.source,
                };
                self.diag(DiagKind::PrefetchOrderMisuse, &gev, g.target, g.addr, || {
                    format!(
                        "get bound at t={} completed after {src} by PE {writer} at t={} wrote the source",
                        g.time, wt
                    )
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(pe: u32, time: u64, seq: u64, op: SanOp, source: &'static str) -> SanEvent {
        SanEvent {
            pe,
            time,
            seq,
            op,
            source,
        }
    }

    fn read(target: u32, addr: u64) -> SanOp {
        SanOp::Read {
            target,
            addr,
            len: 8,
            reg: 1,
        }
    }

    fn put(target: u32, addr: u64) -> SanOp {
        SanOp::Write {
            target,
            addr,
            len: 8,
            kind: WriteKind::Put,
            reg: 1,
        }
    }

    #[test]
    fn unsynced_put_read_is_stale() {
        let mut s = Sanitizer::new(2, SanitizeMode::Collect);
        s.ingest(vec![
            ev(0, 10, 0, put(1, 0x100), "put"),
            ev(1, 20, 0, read(1, 0x100), "read_u64"),
        ]);
        assert_eq!(s.report().kinds(), vec![DiagKind::StaleStoreRead]);
    }

    #[test]
    fn synced_put_read_is_clean() {
        let mut s = Sanitizer::new(2, SanitizeMode::Collect);
        s.ingest(vec![
            ev(0, 10, 0, put(1, 0x100), "put"),
            ev(0, 30, 1, SanOp::GetSync, "sync"),
        ]);
        s.global_barrier();
        s.ingest(vec![ev(1, 40, 0, read(1, 0x100), "read_u64")]);
        assert!(s.report().is_empty(), "{}", s.report().render_table());
    }

    #[test]
    fn concurrent_overlapping_puts_conflict_and_barrier_orders_them() {
        let mut s = Sanitizer::new(3, SanitizeMode::Collect);
        s.ingest(vec![
            ev(0, 10, 0, put(2, 0x100), "put"),
            ev(1, 10, 0, put(2, 0x104), "put"),
        ]);
        assert_eq!(s.report().kinds(), vec![DiagKind::ConflictingPuts]);
        // After a barrier a rewrite is ordered: no further findings.
        s.global_barrier();
        s.ingest(vec![ev(1, 50, 1, put(2, 0x100), "put")]);
        assert_eq!(s.report().len(), 1);
    }

    #[test]
    fn store_sync_edges_order_the_target() {
        let mut s = Sanitizer::new(2, SanitizeMode::Collect);
        let store = SanOp::Write {
            target: 1,
            addr: 0x200,
            len: 8,
            kind: WriteKind::Store,
            reg: 1,
        };
        s.ingest(vec![
            ev(0, 10, 0, store, "store_u64"),
            ev(1, 20, 0, SanOp::StoreSyncWait, "store_sync"),
            ev(1, 30, 1, read(1, 0x200), "read_u64"),
        ]);
        assert!(s.report().is_empty(), "{}", s.report().render_table());
    }

    #[test]
    fn landing_read_before_sync_is_flagged_and_cleared_by_sync() {
        let mut s = Sanitizer::new(2, SanitizeMode::Collect);
        let issue = SanOp::GetIssue {
            target: 1,
            addr: 0x300,
            len: 8,
            local_off: 0x40,
            reg: 1,
        };
        s.ingest(vec![
            ev(0, 10, 0, issue, "get"),
            ev(0, 20, 1, read(0, 0x40), "read_u64"),
        ]);
        assert_eq!(s.report().kinds(), vec![DiagKind::ReadBeforeGetSync]);
        s.ingest(vec![
            ev(0, 30, 2, SanOp::GetSync, "sync"),
            ev(0, 40, 3, read(0, 0x40), "read_u64"),
        ]);
        assert_eq!(s.report().len(), 1, "after sync the landing word is safe");
    }

    #[test]
    fn intervening_store_spoils_a_bound_get() {
        let mut s = Sanitizer::new(2, SanitizeMode::Collect);
        let issue = SanOp::GetIssue {
            target: 1,
            addr: 0x300,
            len: 8,
            local_off: 0x40,
            reg: 1,
        };
        s.ingest(vec![
            ev(0, 10, 0, issue, "get"),
            ev(0, 20, 1, put(1, 0x300), "put"),
            ev(0, 30, 2, SanOp::GetSync, "sync"),
        ]);
        assert!(s.report().kinds().contains(&DiagKind::PrefetchOrderMisuse));
    }

    #[test]
    fn synonym_access_during_buffered_store() {
        let mut s = Sanitizer::new(2, SanitizeMode::Collect);
        let store_r2 = SanOp::Write {
            target: 1,
            addr: 0x100,
            len: 8,
            kind: WriteKind::Store,
            reg: 2,
        };
        let read_r3 = SanOp::Read {
            target: 1,
            addr: 0x100,
            len: 8,
            reg: 3,
        };
        s.ingest(vec![
            ev(0, 10, 0, store_r2, "store_u64"),
            ev(0, 20, 1, read_r3, "read_u64"),
        ]);
        assert!(s.report().kinds().contains(&DiagKind::AnnexSynonymHazard));
    }

    #[test]
    fn cached_line_stale_after_owner_write_until_flushed() {
        let mut s = Sanitizer::new(2, SanitizeMode::Collect);
        let cread = SanOp::CachedRead {
            target: 1,
            addr: 0x100,
            len: 8,
            reg: 1,
        };
        let owner_write = SanOp::Write {
            target: 1,
            addr: 0x100,
            len: 8,
            kind: WriteKind::Blocking,
            reg: NO_REG,
        };
        s.ingest(vec![ev(0, 10, 0, cread, "read_u64_cached")]);
        s.ingest(vec![ev(1, 20, 0, owner_write, "write_u64")]);
        s.ingest(vec![ev(0, 30, 1, cread, "read_u64_cached")]);
        assert_eq!(s.report().kinds(), vec![DiagKind::StaleStoreRead]);
        // Flush, re-read: clean (the single site keeps count 1).
        s.ingest(vec![
            ev(
                0,
                40,
                2,
                SanOp::CacheFlush {
                    target: 1,
                    addr: 0x100,
                },
                "flush_remote_line",
            ),
            ev(0, 50, 3, cread, "read_u64_cached"),
        ]);
        let d = &s.report().diagnostics[0];
        assert_eq!((d.kind, d.count), (DiagKind::StaleStoreRead, 1));
    }

    #[test]
    fn am_deposit_dispatch_creates_an_edge() {
        let mut s = Sanitizer::new(2, SanitizeMode::Collect);
        s.ingest(vec![
            ev(0, 10, 0, put(1, 0x100), "put"),
            ev(0, 20, 1, SanOp::AmDeposit { target: 1 }, "am_deposit"),
            ev(1, 30, 0, SanOp::AmDispatch { count: 1 }, "am_poll"),
            ev(1, 40, 1, read(1, 0x100), "read_u64"),
        ]);
        assert!(
            s.report().is_empty(),
            "deposit fences the put and the edge orders the reader: {}",
            s.report().render_table()
        );
    }

    #[test]
    fn lock_transfer_orders_writes() {
        let mut s = Sanitizer::new(3, SanitizeMode::Collect);
        let w = |t, a| SanOp::Write {
            target: t,
            addr: a,
            len: 8,
            kind: WriteKind::Blocking,
            reg: 1,
        };
        s.ingest(vec![
            ev(
                0,
                10,
                0,
                SanOp::LockAcquire {
                    target: 2,
                    addr: 0x10,
                },
                "lock",
            ),
            ev(0, 20, 1, w(2, 0x100), "write_u64"),
            ev(
                0,
                30,
                2,
                SanOp::LockRelease {
                    target: 2,
                    addr: 0x10,
                },
                "unlock",
            ),
            ev(
                1,
                40,
                0,
                SanOp::LockAcquire {
                    target: 2,
                    addr: 0x10,
                },
                "lock",
            ),
            ev(1, 50, 1, w(2, 0x100), "write_u64"),
            ev(
                1,
                60,
                2,
                SanOp::LockRelease {
                    target: 2,
                    addr: 0x10,
                },
                "unlock",
            ),
        ]);
        assert!(s.report().is_empty(), "{}", s.report().render_table());
    }

    #[test]
    fn panic_mode_trips_on_check() {
        let mut s = Sanitizer::new(2, SanitizeMode::Panic);
        s.ingest(vec![
            ev(0, 10, 0, put(1, 0x100), "put"),
            ev(1, 20, 0, read(1, 0x100), "read_u64"),
        ]);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| s.check()));
        assert!(r.is_err(), "panic mode must abort on findings");
        // Already-reported findings do not trip twice.
        s.check();
    }

    #[test]
    fn duplicate_sites_fold_into_count() {
        let mut s = Sanitizer::new(2, SanitizeMode::Collect);
        s.ingest(vec![ev(0, 10, 0, put(1, 0x100), "put")]);
        for i in 0..3 {
            s.ingest(vec![ev(1, 20 + i, i, read(1, 0x100), "read_u64")]);
        }
        let rep = s.report();
        assert_eq!(rep.len(), 1);
        assert_eq!(rep.diagnostics[0].count, 3);
    }
}
