//! Typed diagnostics and the rendered report.

use std::fmt;

/// The hazard classes the analyzer reports (each maps to a trap the
/// paper documents).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DiagKind {
    /// A get's local landing word was read before the issuer's
    /// `sync()` completed the get.
    ReadBeforeGetSync,
    /// A read observed an address with un-synced writes pending (a
    /// split-phase put before the writer's `sync()`, a signaling store
    /// before the target's `store_sync`, a buffered local write, or a
    /// stale cached line).
    StaleStoreRead,
    /// One PE was accessed through two different annex registers while
    /// writes were still buffered — the `UnsafeMulti` synonym trap
    /// (paper §3.4).
    AnnexSynonymHazard,
    /// Two PEs wrote overlapping bytes with no happens-before edge
    /// between them: the final value depends on arrival order.
    ConflictingPuts,
    /// A binding-prefetch (get) value was completed after an
    /// intervening store to its source: the popped value predates the
    /// store.
    PrefetchOrderMisuse,
}

impl DiagKind {
    /// Every hazard class, for exhaustive consumers (the static
    /// analyzer's rule-coverage map enumerates this so a new class
    /// breaks its compilation rather than passing silently).
    pub const ALL: [DiagKind; 5] = [
        DiagKind::ReadBeforeGetSync,
        DiagKind::StaleStoreRead,
        DiagKind::AnnexSynonymHazard,
        DiagKind::ConflictingPuts,
        DiagKind::PrefetchOrderMisuse,
    ];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            DiagKind::ReadBeforeGetSync => "ReadBeforeGetSync",
            DiagKind::StaleStoreRead => "StaleStoreRead",
            DiagKind::AnnexSynonymHazard => "AnnexSynonymHazard",
            DiagKind::ConflictingPuts => "ConflictingPuts",
            DiagKind::PrefetchOrderMisuse => "PrefetchOrderMisuse",
        }
    }
}

impl fmt::Display for DiagKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One reported hazard (duplicates at the same site fold into `count`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Hazard class.
    pub kind: DiagKind,
    /// PE that performed the tripping operation.
    pub pe: u32,
    /// PE whose memory is involved.
    pub target: u32,
    /// Offset in the target's memory.
    pub addr: u64,
    /// Virtual time of the tripping operation.
    pub time: u64,
    /// Runtime entry point that tripped it.
    pub source: &'static str,
    /// Occurrences folded into this row.
    pub count: u64,
    /// Human-oriented explanation.
    pub detail: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: PE{} -> PE{} addr {:#x} in {} at t={} ({})",
            self.kind, self.pe, self.target, self.addr, self.source, self.time, self.detail
        )
    }
}

/// The analyzer's findings.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Report {
    /// All diagnostics, in detection order.
    pub diagnostics: Vec<Diagnostic>,
    /// Events the analyzer processed.
    pub events_processed: u64,
}

impl Report {
    /// Whether the run is clean.
    pub fn is_empty(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Number of distinct diagnostic sites.
    pub fn len(&self) -> usize {
        self.diagnostics.len()
    }

    /// The kinds present, in detection order (deduplicated).
    pub fn kinds(&self) -> Vec<DiagKind> {
        let mut out = Vec::new();
        for d in &self.diagnostics {
            if !out.contains(&d.kind) {
                out.push(d.kind);
            }
        }
        out
    }

    /// Renders the findings as an aligned text table.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "t3dsan: {} diagnostic site(s), {} event(s) analyzed\n",
            self.diagnostics.len(),
            self.events_processed
        ));
        if self.diagnostics.is_empty() {
            out.push_str("no hazards detected\n");
            return out;
        }
        out.push_str(&format!(
            "{:<20} {:>3} {:>6} {:>12} {:<16} {:>5}  {}\n",
            "KIND", "PE", "TARGET", "ADDR", "SOURCE", "N", "DETAIL"
        ));
        for d in &self.diagnostics {
            out.push_str(&format!(
                "{:<20} {:>3} {:>6} {:>#12x} {:<16} {:>5}  {}\n",
                d.kind.name(),
                d.pe,
                d.target,
                d.addr,
                d.source,
                d.count,
                d.detail
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_all_columns() {
        let r = Report {
            diagnostics: vec![Diagnostic {
                kind: DiagKind::StaleStoreRead,
                pe: 2,
                target: 0,
                addr: 0x1000,
                time: 42,
                source: "read_u64",
                count: 3,
                detail: "un-synced put by PE 1".into(),
            }],
            events_processed: 9,
        };
        let t = r.render_table();
        assert!(t.contains("StaleStoreRead"));
        assert!(t.contains("read_u64"));
        assert!(t.contains("0x1000"));
        assert!(t.contains("un-synced put by PE 1"));
        assert!(r.kinds() == vec![DiagKind::StaleStoreRead]);
    }

    #[test]
    fn empty_report_says_so() {
        let r = Report::default();
        assert!(r.is_empty());
        assert!(r.render_table().contains("no hazards detected"));
    }
}
