//! The event vocabulary the instrumented runtime emits.
//!
//! Each `splitc` communication primitive appends one [`SanEvent`] to its
//! node's [`SanLog`] (no machine interaction — instrumentation never
//! perturbs virtual time). Logs are drained into the analyzer at phase
//! boundaries and merged by `(time, pe, seq)`, the same total order the
//! sharded phase engine imposes on its effect log.

/// Annex register index meaning "not tracked for this operation"
/// (bulk transfers resolve their registers inside the mechanism layer).
pub const NO_REG: u32 = u32::MAX;

/// What flavour of remote write an event describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteKind {
    /// Blocking write (`write_u64`, `bulk_write`): fenced and
    /// acknowledged before the call returns — synced at birth.
    Blocking,
    /// Split-phase put: un-synced until the writer's `sync()`.
    Put,
    /// Signaling store: un-synced until the *target* counts it with
    /// `store_sync` (or everyone does with `all_store_sync`).
    Store,
}

/// One instrumented operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SanOp {
    /// Uncached (or local) data read of `[addr, addr+len)` on `target`.
    Read {
        /// PE whose memory is read.
        target: u32,
        /// Start offset in the target's memory.
        addr: u64,
        /// Bytes read.
        len: u64,
        /// Annex register used ([`NO_REG`] when untracked/local).
        reg: u32,
    },
    /// Cached remote read: fills (or hits) a line in the reader's L1.
    CachedRead {
        /// PE whose memory is read.
        target: u32,
        /// Start offset in the target's memory.
        addr: u64,
        /// Bytes read.
        len: u64,
        /// Annex register used.
        reg: u32,
    },
    /// Explicit flush of the reader's cached copy of `target`'s line.
    CacheFlush {
        /// PE whose line is flushed from the reader's cache.
        target: u32,
        /// Any offset within the flushed line.
        addr: u64,
    },
    /// Data write of `[addr, addr+len)` on `target`.
    Write {
        /// PE whose memory is written.
        target: u32,
        /// Start offset in the target's memory.
        addr: u64,
        /// Bytes written.
        len: u64,
        /// Completion discipline of the write.
        kind: WriteKind,
        /// Annex register used ([`NO_REG`] when untracked/local).
        reg: u32,
    },
    /// Split-phase get issue: binds `[addr, addr+len)` on `target` now,
    /// lands at local offset `local_off` by `sync()`.
    GetIssue {
        /// PE whose memory is read.
        target: u32,
        /// Source offset in the target's memory.
        addr: u64,
        /// Bytes bound.
        len: u64,
        /// Local landing offset.
        local_off: u64,
        /// Annex register used.
        reg: u32,
    },
    /// `sync()`: completes the issuer's outstanding gets, puts and
    /// bulk transfers (fence + ack wait).
    GetSync,
    /// Internal prefetch-queue drain at capacity (fence, no ack wait):
    /// outstanding gets land, but puts/stores stay un-synced.
    GetDrain,
    /// `store_sync`: the *target* has counted the signaling bytes
    /// aimed at it.
    StoreSyncWait,
    /// Atomic-message deposit into `target`'s queue (internally fenced
    /// and acknowledged).
    AmDeposit {
        /// PE whose message queue receives the deposit.
        target: u32,
    },
    /// `count` queued messages dispatched to handlers on this PE.
    AmDispatch {
        /// Messages handled by this poll.
        count: u64,
    },
    /// Successful lock acquisition (joins the releaser's history).
    LockAcquire {
        /// PE holding the lock word.
        target: u32,
        /// Lock word offset.
        addr: u64,
    },
    /// Lock release (publishes the holder's history).
    LockRelease {
        /// PE holding the lock word.
        target: u32,
        /// Lock word offset.
        addr: u64,
    },
}

/// One source-tagged, time-stamped event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SanEvent {
    /// Issuing PE.
    pub pe: u32,
    /// Issuer's virtual clock when the operation completed.
    pub time: u64,
    /// Per-PE sequence number (ties within one virtual time).
    pub seq: u64,
    /// The operation.
    pub op: SanOp,
    /// The runtime entry point that emitted it (e.g. `"read_u64"`).
    pub source: &'static str,
}

/// A per-node event log (lives in the runtime's per-PE state so
/// sharded phases can record without cross-PE contention).
#[derive(Debug, Clone, Default)]
pub struct SanLog {
    enabled: bool,
    seq: u64,
    events: Vec<SanEvent>,
}

impl SanLog {
    /// A log that records (pass `false` for a disabled, zero-cost one).
    pub fn new(enabled: bool) -> Self {
        SanLog {
            enabled,
            seq: 0,
            events: Vec::new(),
        }
    }

    /// Whether push actually records.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records one event (no-op when disabled).
    pub fn push(&mut self, pe: u32, time: u64, op: SanOp, source: &'static str) {
        if !self.enabled {
            return;
        }
        let seq = self.seq;
        self.seq += 1;
        self.events.push(SanEvent {
            pe,
            time,
            seq,
            op,
            source,
        });
    }

    /// Takes the recorded events, leaving the log empty (the sequence
    /// counter keeps running so later events still order after).
    pub fn drain(&mut self) -> Vec<SanEvent> {
        std::mem::take(&mut self.events)
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the log holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Merges per-PE logs into the global analysis order `(time, pe, seq)`
/// — deterministic regardless of which phase driver produced them.
pub fn merge_logs(mut logs: Vec<Vec<SanEvent>>) -> Vec<SanEvent> {
    let mut all: Vec<SanEvent> = logs.drain(..).flatten().collect();
    all.sort_unstable_by_key(|e| (e.time, e.pe, e.seq));
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_log_records_nothing() {
        let mut log = SanLog::new(false);
        log.push(0, 10, SanOp::GetSync, "sync");
        assert!(log.is_empty());
    }

    #[test]
    fn merge_orders_by_time_then_pe_then_seq() {
        let mut a = SanLog::new(true);
        let mut b = SanLog::new(true);
        a.push(0, 20, SanOp::GetSync, "sync");
        a.push(0, 20, SanOp::GetSync, "sync");
        b.push(1, 10, SanOp::GetSync, "sync");
        let merged = merge_logs(vec![a.drain(), b.drain()]);
        let key: Vec<(u64, u32, u64)> = merged.iter().map(|e| (e.time, e.pe, e.seq)).collect();
        assert_eq!(key, vec![(10, 1, 0), (20, 0, 0), (20, 0, 1)]);
    }
}
