//! A coarse hazard scan straight over the machine's architectural
//! trace.
//!
//! Raw shell programs (no `splitc` runtime) still leave a full record
//! in [`t3d_machine::Tracer`]. This pass walks it with write-buffer
//! shadow state: which stores each PE still has buffered (cleared by
//! its fences), which prefetches are outstanding, and every store's
//! position in the stream. It reports the same [`DiagKind`] vocabulary
//! as the split-phase analyzer, with 8-byte access granularity (the
//! trace does not carry lengths — a documented imprecision).
//!
//! # Example
//!
//! ```
//! use t3d_machine::{Machine, MachineConfig};
//! use t3d_shell::{AnnexEntry, FuncCode};
//!
//! let mut m = Machine::new(MachineConfig::t3d(2));
//! m.enable_trace(256);
//! // Store to PE 1 through annex register 1, read it back through
//! // register 2 without a fence: the synonym trap.
//! m.annex_set(0, 1, AnnexEntry { pe: 1, func: FuncCode::Uncached });
//! m.annex_set(0, 2, AnnexEntry { pe: 1, func: FuncCode::Uncached });
//! m.st8(0, m.va(1, 0x100), 7);
//! let _ = m.ld8(0, m.va(2, 0x100));
//! let report = t3dsan::trace_scan::scan_trace(&m);
//! assert_eq!(report.kinds(), vec![t3dsan::DiagKind::AnnexSynonymHazard]);
//! ```

use t3d_machine::{Machine, TraceKind};

use crate::report::{DiagKind, Diagnostic, Report};

/// Width assumed for every traced access (the trace has no lengths).
const ACCESS_BYTES: u64 = 8;

struct PendingStore {
    writer: u32,
    target: u32,
    off: u64,
    reg: usize,
}

struct StoreHist {
    target: u32,
    off: u64,
    idx: u64,
}

struct Fetch {
    target: u32,
    off: u64,
    idx: u64,
}

fn overlap(a: u64, b: u64) -> bool {
    a < b + ACCESS_BYTES && b < a + ACCESS_BYTES
}

/// Scans `m`'s recorded trace for hazards (see the module docs).
pub fn scan_trace(m: &Machine) -> Report {
    let mut pending: Vec<PendingStore> = Vec::new();
    let mut history: Vec<StoreHist> = Vec::new();
    let mut fetches: Vec<Vec<Fetch>> = (0..m.nodes()).map(|_| Vec::new()).collect();
    let mut diagnostics: Vec<Diagnostic> = Vec::new();
    let mut events = 0u64;

    let diag = |diagnostics: &mut Vec<Diagnostic>,
                kind: DiagKind,
                pe: u32,
                target: u32,
                addr: u64,
                time: u64,
                source: &'static str,
                detail: String| {
        for d in diagnostics.iter_mut() {
            if d.kind == kind && d.pe == pe && d.target == target && d.addr == addr {
                d.count += 1;
                return;
            }
        }
        diagnostics.push(Diagnostic {
            kind,
            pe,
            target,
            addr,
            time,
            source,
            count: 1,
            detail,
        });
    };

    for (i, e) in m.tracer().events().enumerate() {
        events += 1;
        let idx = i as u64;
        let pe = e.pe;
        match e.kind {
            TraceKind::StoreRemote(t) => {
                let (reg, off) = m.split_va(e.addr);
                pending.push(PendingStore {
                    writer: pe,
                    target: t,
                    off,
                    reg,
                });
                history.push(StoreHist {
                    target: t,
                    off,
                    idx,
                });
            }
            TraceKind::StoreLocal => {
                pending.push(PendingStore {
                    writer: pe,
                    target: pe,
                    off: e.addr,
                    reg: 0,
                });
                history.push(StoreHist {
                    target: pe,
                    off: e.addr,
                    idx,
                });
            }
            TraceKind::MemoryBarrier
            | TraceKind::AckWait
            | TraceKind::Barrier
            | TraceKind::FuzzyBarrierEnd => {
                pending.retain(|p| p.writer != pe);
            }
            TraceKind::LoadRemote(t) => {
                let (reg, off) = m.split_va(e.addr);
                if let Some(p) = pending
                    .iter()
                    .find(|p| p.writer == pe && p.target == t && p.reg != reg)
                {
                    diag(
                        &mut diagnostics,
                        DiagKind::AnnexSynonymHazard,
                        pe,
                        t,
                        off,
                        e.start,
                        "ld",
                        format!(
                            "load via annex reg {reg} while stores via reg {} are buffered",
                            p.reg
                        ),
                    );
                }
                if let Some(p) = pending
                    .iter()
                    .find(|p| p.target == t && p.writer != pe && overlap(p.off, off))
                {
                    diag(
                        &mut diagnostics,
                        DiagKind::StaleStoreRead,
                        pe,
                        t,
                        off,
                        e.start,
                        "ld",
                        format!("PE {} still has a store to these bytes buffered", p.writer),
                    );
                }
            }
            TraceKind::LoadLocal => {
                if let Some(p) = pending
                    .iter()
                    .find(|p| p.target == pe && p.writer != pe && overlap(p.off, e.addr))
                {
                    diag(
                        &mut diagnostics,
                        DiagKind::StaleStoreRead,
                        pe,
                        pe,
                        e.addr,
                        e.start,
                        "ld",
                        format!("PE {} still has a store to these bytes buffered", p.writer),
                    );
                }
            }
            TraceKind::StatusPoll if pending.iter().any(|p| p.writer == pe && p.target != pe) => {
                diag(
                    &mut diagnostics,
                    DiagKind::StaleStoreRead,
                    pe,
                    pe,
                    0,
                    e.start,
                    "poll_status",
                    "status bit polled with writes still in the write buffer (fence first)".into(),
                );
            }
            TraceKind::Fetch(t) => {
                let (_, off) = m.split_va(e.addr);
                fetches[pe as usize].push(Fetch {
                    target: t,
                    off,
                    idx,
                });
            }
            TraceKind::Pop if !fetches[pe as usize].is_empty() => {
                let f = fetches[pe as usize].remove(0);
                if let Some(h) = history
                    .iter()
                    .find(|h| h.target == f.target && h.idx > f.idx && overlap(h.off, f.off))
                {
                    diag(
                        &mut diagnostics,
                        DiagKind::PrefetchOrderMisuse,
                        pe,
                        f.target,
                        f.off,
                        e.start,
                        "pop_prefetch",
                        format!(
                            "popped value was bound before the store at stream position {}",
                            h.idx
                        ),
                    );
                }
            }
            _ => {}
        }
    }
    Report {
        diagnostics,
        events_processed: events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use t3d_machine::{MachineConfig, Tracer};
    use t3d_shell::{AnnexEntry, FuncCode};

    fn machine2() -> Machine {
        let mut m = Machine::new(MachineConfig::t3d(2));
        m.enable_trace(Tracer::env_cap(1024));
        m
    }

    fn annex(m: &mut Machine, pe: usize, idx: usize, target: u32) {
        m.annex_set(
            pe,
            idx,
            AnnexEntry {
                pe: target,
                func: FuncCode::Uncached,
            },
        );
    }

    #[test]
    fn fenced_remote_traffic_is_clean() {
        let mut m = machine2();
        annex(&mut m, 0, 1, 1);
        m.st8(0, m.va(1, 0x100), 7);
        m.memory_barrier(0);
        m.wait_write_acks(0);
        let _ = m.ld8(0, m.va(1, 0x100));
        assert!(scan_trace(&m).is_empty());
    }

    #[test]
    fn status_poll_before_fence_is_flagged() {
        let mut m = machine2();
        annex(&mut m, 0, 1, 1);
        m.st8(0, m.va(1, 0x100), 7);
        let _ = m.poll_status(0);
        let r = scan_trace(&m);
        assert_eq!(r.kinds(), vec![DiagKind::StaleStoreRead]);
        assert!(r.diagnostics[0].detail.contains("status bit"));
    }

    #[test]
    fn buffered_local_store_read_remotely_is_flagged() {
        let mut m = machine2();
        m.st8(1, 0x200, 9); // PE 1 buffers a local store
        annex(&mut m, 0, 1, 1);
        let _ = m.ld8(0, m.va(1, 0x200));
        assert_eq!(scan_trace(&m).kinds(), vec![DiagKind::StaleStoreRead]);
    }

    #[test]
    fn pop_after_store_to_source_is_flagged() {
        let mut m = machine2();
        annex(&mut m, 0, 1, 1);
        assert!(m.fetch(0, m.va(1, 0x300)));
        m.st8(0, m.va(1, 0x300), 1);
        m.memory_barrier(0);
        let _ = m.pop_prefetch(0);
        let r = scan_trace(&m);
        assert!(r.kinds().contains(&DiagKind::PrefetchOrderMisuse));
    }
}
