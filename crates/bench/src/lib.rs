//! Shared configuration for the Criterion bench harness.
//!
//! Each `benches/figN_*.rs` target regenerates the corresponding paper
//! artifact: it *prints* the simulated latency/bandwidth series once (the
//! reproduction output — virtual time), and then lets Criterion measure
//! the host-side cost of the underlying probe kernels (useful for
//! tracking simulator performance regressions). The virtual-time numbers
//! are the ones compared against the paper in `EXPERIMENTS.md`.

/// Criterion settings that keep the full suite's wall time reasonable.
pub fn quick() -> criterion::Criterion {
    criterion::Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_millis(600))
        .warm_up_time(std::time::Duration::from_millis(200))
        .configure_from_args()
}

/// Prints a banner separating reproduction output from Criterion noise.
pub fn banner(title: &str) {
    println!("\n==== {title} ====");
}
