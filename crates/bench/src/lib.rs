//! Shared configuration for the bench harness.
//!
//! Each `benches/figN_*.rs` target regenerates the corresponding paper
//! artifact: it *prints* the simulated latency/bandwidth series once (the
//! reproduction output — virtual time), and then measures the host-side
//! cost of the underlying probe kernels (useful for tracking simulator
//! performance regressions). The virtual-time numbers are the ones
//! compared against the paper in `EXPERIMENTS.md`.
//!
//! The harness is self-contained (the workspace builds offline, so no
//! Criterion): a tiny warm-up + timed-sample loop over `std::time::
//! Instant`, exposing just the API surface the bench targets use —
//! `Criterion`, `benchmark_group`, `bench_function`, `b.iter(..)` and
//! the `criterion_group!`/`criterion_main!` macros.

use std::time::{Duration, Instant};

/// Harness settings: sample count and per-phase time budgets.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Total time budget for timed samples.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Time spent running the closure before measurement starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Kept for call-site compatibility; command-line filtering is not
    /// supported by the self-contained harness.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("-- group {name}");
        BenchmarkGroup { crit: self }
    }
}

/// A named collection of benchmark functions sharing the settings.
pub struct BenchmarkGroup<'c> {
    crit: &'c Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark: warm-up, then timed samples, then a one-line
    /// mean/min report.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { iters: Vec::new() };
        // Warm-up: run until the budget is spent.
        let warm_until = Instant::now() + self.crit.warm_up_time;
        while Instant::now() < warm_until {
            f(&mut b);
        }
        b.iters.clear();
        let per_sample = self.crit.measurement_time / self.crit.sample_size as u32;
        for _ in 0..self.crit.sample_size {
            let sample_until = Instant::now() + per_sample;
            loop {
                f(&mut b);
                if Instant::now() >= sample_until {
                    break;
                }
            }
        }
        let n = b.iters.len().max(1) as u32;
        let total: Duration = b.iters.iter().sum();
        let mean = total / n;
        let min = b.iters.iter().min().copied().unwrap_or_default();
        println!("   {name:<28} mean {mean:>12.2?}  min {min:>12.2?}  ({n} iters)");
        self
    }

    /// Ends the group (kept for call-site compatibility).
    pub fn finish(&mut self) {}
}

/// Passed to each benchmark closure; `iter` times one invocation.
pub struct Bencher {
    iters: Vec<Duration>,
}

impl Bencher {
    /// Times `f` once and records the duration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        let out = f();
        self.iters.push(start.elapsed());
        std::hint::black_box(out);
    }
}

/// Declares a benchmark group: a config constructor and target functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $cfg;
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench `main` that runs the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

/// Harness settings that keep the full suite's wall time reasonable.
pub fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_millis(600))
        .warm_up_time(std::time::Duration::from_millis(200))
        .configure_from_args()
}

/// Prints a banner separating reproduction output from harness noise.
pub fn banner(title: &str) {
    println!("\n==== {title} ====");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        let mut ran = 0u64;
        {
            let mut g = c.benchmark_group("selftest");
            g.bench_function("spin", |b| b.iter(|| ran += 1));
            g.finish();
        }
        assert!(ran > 0, "benchmark closure executed");
    }
}
