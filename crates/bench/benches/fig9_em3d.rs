//! Figure 9: EM3D time per edge vs remote-edge fraction.

use em3d::{fig9_sweep, run_version, Em3dParams, Version};
use t3d_bench_suite::{banner, criterion_group, criterion_main, quick, Criterion};

fn bench(c: &mut Criterion) {
    banner("Figure 9: EM3D us/edge vs % remote edges (8 PEs, reduced size)");
    let params = Em3dParams {
        nodes_per_pe: 120,
        degree: 10,
        pct_remote: 0.0,
        steps: 1,
        seed: 0xE3D,
    };
    let sweep = fig9_sweep(8, params, &[0.0, 5.0, 10.0, 20.0, 40.0]);
    print!("{:>10}", "% remote");
    for (label, _) in &sweep {
        print!("{label:>9}");
    }
    println!();
    for (i, &(pct, _)) in sweep[0].1.iter().enumerate() {
        print!("{pct:>10.0}");
        for (_, pts) in &sweep {
            print!("{:>9.3}", pts[i].1);
        }
        println!();
    }

    let mut g = c.benchmark_group("fig9_em3d");
    g.bench_function("bulk_version_tiny", |b| {
        b.iter(|| run_version(4, Em3dParams::tiny(20.0), Version::Bulk))
    });
    g.finish();
}

criterion_group! { name = benches; config = quick(); targets = bench }
criterion_main!(benches);
