//! Figure 6 + Section 5.2 table: the binding prefetch.

use t3d_bench_suite::{banner, criterion_group, criterion_main, quick, Criterion};
use t3d_machine::{Machine, MachineConfig};
use t3d_microbench::probes::prefetch;
use t3d_microbench::report::series_table;

fn bench(c: &mut Criterion) {
    banner("Figure 6: prefetch group sweep (avg ns per element)");
    println!(
        "{}",
        series_table("prefetch", "group", &prefetch::group_sweep())
    );
    println!("{}", prefetch::cost_breakdown());

    let mut g = c.benchmark_group("fig6_prefetch");
    let mut m = Machine::new(MachineConfig::t3d(2));
    g.bench_function("group16_kernel", |b| {
        b.iter(|| std::hint::black_box(prefetch::raw_group_cost(&mut m, 16)))
    });
    g.finish();
}

criterion_group! { name = benches; config = quick(); targets = bench }
criterion_main!(benches);
