//! Figure 1: local read latency profile (T3D and DEC workstation).

use t3d_bench_suite::{banner, criterion_group, criterion_main, quick, Criterion};
use t3d_machine::{Machine, MachineConfig};
use t3d_microbench::probes::local;

fn bench(c: &mut Criterion) {
    banner("Figure 1: local read latency (avg ns)");
    let sizes = vec![4 * 1024, 8 * 1024, 64 * 1024, 256 * 1024];
    println!("{}", local::read_profile(&sizes, 1 << 20).to_table());
    println!(
        "{}",
        local::workstation_read_profile(&sizes, 1 << 20).to_table()
    );

    let mut g = c.benchmark_group("fig1_local_read");
    let mut m = Machine::new(MachineConfig::t3d(1));
    g.bench_function("probe_64k_stride32", |b| {
        b.iter(|| {
            m.reset_timing();
            let mut a = 0u64;
            while a < 64 * 1024 {
                std::hint::black_box(m.ld8(0, a));
                a += 32;
            }
        })
    });
    g.finish();
}

criterion_group! { name = benches; config = quick(); targets = bench }
criterion_main!(benches);
