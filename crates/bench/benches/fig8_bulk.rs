//! Figure 8: bulk transfer bandwidth by mechanism.

use splitc::{GlobalPtr, SplitC};
use t3d_bench_suite::{banner, criterion_group, criterion_main, quick, Criterion};
use t3d_machine::MachineConfig;
use t3d_microbench::probes::bulk;
use t3d_microbench::report::series_table;

fn bench(c: &mut Criterion) {
    banner("Figure 8: bulk bandwidth (MB/s)");
    let sizes = vec![
        8,
        32,
        64,
        128,
        1024,
        8 * 1024,
        16 * 1024,
        64 * 1024,
        512 * 1024,
    ];
    let reads = bulk::read_bandwidth(&sizes);
    println!("{}", series_table("bulk READ", "bytes", &reads));
    println!(
        "{}",
        series_table("bulk WRITE", "bytes", &bulk::write_bandwidth(&sizes))
    );
    for &n in &sizes {
        println!(
            "best read mechanism at {n:>7} B: {}",
            bulk::best_read_mechanism(&reads, n)
        );
    }

    let mut g = c.benchmark_group("fig8_bulk");
    g.bench_function("bulk_read_8k_kernel", |b| {
        b.iter(|| {
            let mut sc = SplitC::new(MachineConfig::t3d(2));
            let src = sc.alloc(8192, 8);
            let dst = sc.alloc(8192, 8);
            sc.on(0, |ctx| ctx.bulk_read(dst, GlobalPtr::new(1, src), 8192));
        })
    });
    g.finish();
}

criterion_group! { name = benches; config = quick(); targets = bench }
criterion_main!(benches);
