//! Figure 7: non-blocking remote writes and Split-C put.

use splitc::{GlobalPtr, SplitC};
use t3d_bench_suite::{banner, criterion_group, criterion_main, quick, Criterion};
use t3d_machine::MachineConfig;
use t3d_microbench::probes::put;

fn bench(c: &mut Criterion) {
    banner("Figure 7: non-blocking remote write / put (avg ns)");
    for p in put::nonblocking_profiles(&[64 * 1024], 1 << 20) {
        println!("{}", p.to_table());
    }

    let mut g = c.benchmark_group("fig7_put");
    let mut sc = SplitC::new(MachineConfig::t3d(2));
    let dst = sc.alloc(256 * 64, 8);
    g.bench_function("put_kernel", |b| {
        b.iter(|| {
            sc.machine().reset_timing();
            sc.on(0, |ctx| {
                for i in 0..256u64 {
                    ctx.put(GlobalPtr::new(1, dst + i * 64), i);
                }
                ctx.sync();
            });
        })
    });
    g.finish();
}

criterion_group! { name = benches; config = quick(); targets = bench }
criterion_main!(benches);
