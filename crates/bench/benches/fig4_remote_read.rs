//! Figure 4: remote read latency (uncached / cached / Split-C).

use t3d_bench_suite::{banner, criterion_group, criterion_main, quick, Criterion};
use t3d_machine::{Machine, MachineConfig};
use t3d_microbench::probes::remote;
use t3d_shell::{AnnexEntry, FuncCode};

fn bench(c: &mut Criterion) {
    banner("Figure 4: remote read latency (avg ns)");
    for p in remote::read_profiles(&[64 * 1024], 1 << 20) {
        println!("{}", p.to_table());
    }

    let mut g = c.benchmark_group("fig4_remote_read");
    let mut m = Machine::new(MachineConfig::t3d(2));
    m.annex_set(
        0,
        1,
        AnnexEntry {
            pe: 1,
            func: FuncCode::Uncached,
        },
    );
    g.bench_function("uncached_64k", |b| {
        b.iter(|| {
            m.reset_timing();
            let mut a = 0u64;
            while a < 64 * 1024 {
                std::hint::black_box(m.ld8(0, m.va(1, a)));
                a += 64;
            }
        })
    });
    g.finish();
}

criterion_group! { name = benches; config = quick(); targets = bench }
criterion_main!(benches);
