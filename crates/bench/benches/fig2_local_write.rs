//! Figure 2: local write cost profile.

use t3d_bench_suite::{banner, criterion_group, criterion_main, quick, Criterion};
use t3d_machine::{Machine, MachineConfig};
use t3d_microbench::probes::local;

fn bench(c: &mut Criterion) {
    banner("Figure 2: local write cost (avg ns)");
    let sizes = vec![4 * 1024, 64 * 1024, 256 * 1024];
    println!("{}", local::write_profile(&sizes, 1 << 20).to_table());

    let mut g = c.benchmark_group("fig2_local_write");
    let mut m = Machine::new(MachineConfig::t3d(1));
    g.bench_function("probe_64k_stride8", |b| {
        b.iter(|| {
            m.reset_timing();
            let mut a = 0u64;
            while a < 64 * 1024 {
                m.st8(0, a, a);
                a += 8;
            }
        })
    });
    g.finish();
}

criterion_group! { name = benches; config = quick(); targets = bench }
criterion_main!(benches);
