//! Section 7: synchronization and messaging cost table.

use t3d_bench_suite::{banner, criterion_group, criterion_main, quick, Criterion};
use t3d_microbench::probes::sync;

fn bench(c: &mut Criterion) {
    banner("Section 7 table: synchronization & messaging");
    println!("{}", sync::sync_table());

    let mut g = c.benchmark_group("tab_sync");
    g.bench_function("probe_suite", |b| {
        b.iter(|| std::hint::black_box(sync::sync_costs()))
    });
    g.finish();
}

criterion_group! { name = benches; config = quick(); targets = bench }
criterion_main!(benches);
