//! Figure 5: blocking remote write latency.

use t3d_bench_suite::{banner, criterion_group, criterion_main, quick, Criterion};
use t3d_machine::{Machine, MachineConfig};
use t3d_microbench::probes::remote;
use t3d_shell::{AnnexEntry, FuncCode};

fn bench(c: &mut Criterion) {
    banner("Figure 5: remote write latency (avg ns)");
    for p in remote::write_profiles(&[64 * 1024], 1 << 20) {
        println!("{}", p.to_table());
    }

    let mut g = c.benchmark_group("fig5_remote_write");
    let mut m = Machine::new(MachineConfig::t3d(2));
    m.annex_set(
        0,
        1,
        AnnexEntry {
            pe: 1,
            func: FuncCode::Uncached,
        },
    );
    g.bench_function("blocking_write_kernel", |b| {
        b.iter(|| {
            m.reset_timing();
            for i in 0..256u64 {
                m.st8(0, m.va(1, i * 64), i);
                m.memory_barrier(0);
                m.wait_write_acks(0);
            }
        })
    });
    g.finish();
}

criterion_group! { name = benches; config = quick(); targets = bench }
criterion_main!(benches);
