//! Ablations: the Section 9 design-choice what-ifs.

use t3d_bench_suite::{banner, criterion_group, criterion_main, quick, Criterion};
use t3d_microbench::probes::ablation;

fn bench(c: &mut Criterion) {
    banner("Ablations (annex policy, write merging, prefetch depth, BLT start-up)");
    for t in ablation::ablation_tables() {
        println!("{t}");
    }

    let mut g = c.benchmark_group("ablations");
    g.bench_function("annex_policy_probe", |b| {
        b.iter(|| {
            std::hint::black_box(ablation::annex_policy_read_cost(
                splitc::AnnexPolicy::HashedMulti,
                4,
                32,
            ))
        })
    });
    g.finish();
}

criterion_group! { name = benches; config = quick(); targets = bench }
criterion_main!(benches);
