//! The rule catalog: stable IDs, classification, and the coverage map
//! against `t3dsan`'s dynamic diagnostic kinds.

use t3dsan::DiagKind;

/// One lint rule. `H` rules are correctness hazards mirroring the
/// dynamic sanitizer; `P` rules are performance advisories
/// parameterized from the machine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// A get's local landing span is read before the issuer's `sync()`.
    H001ReadBeforeGetSync,
    /// A `store_sync` waits for more bytes than any interleaving of the
    /// program can ever deliver — the runtime's "storeSync deadlock".
    H002UnbalancedStoreSync,
    /// PEs execute different global-collective sequences (barrier /
    /// all_store_sync / phase boundaries) — a structural deadlock.
    H003BarrierDivergence,
    /// Two PEs write overlapping bytes with no ordering edge between
    /// them: the final value depends on arrival order.
    H004ConflictingPuts,
    /// A read may observe an un-synced split-phase put or un-consumed
    /// signaling store from another PE.
    H005StaleStoreRead,
    /// A write may land on a get's source while the get is still bound
    /// in the prefetch queue: the popped value predates the write.
    H006PrefetchOrderMisuse,
    /// An op's footprint leaves the configured machine (PE out of
    /// range, or a span past the end of local memory).
    H007OutOfBounds,
    /// An element-transfer loop moves enough data to cross the
    /// configured bulk crossover: one bulk transfer (or a get pipeline)
    /// would be faster.
    P001ElementLoopTransfer,
    /// A strided bulk transfer whose stride lands every element on the
    /// same DRAM bank with an off-page access each time.
    P002SameBankStride,
    /// A run of sub-word writes to distinct cache lines at least as
    /// long as the write buffer: no merging, every store stalls.
    P003NonMergingByteWrites,
    /// A `sync()` immediately after a lone get: zero overlap — batch
    /// more split-phase traffic before syncing.
    P004EagerSync,
    /// More gets outstanding than the binding prefetch queue holds: the
    /// hardware drains the queue mid-stream, serializing the pipeline.
    P005PrefetchQueueOverflow,
}

impl Rule {
    /// Every rule, hazards first, in ID order.
    pub const ALL: [Rule; 12] = [
        Rule::H001ReadBeforeGetSync,
        Rule::H002UnbalancedStoreSync,
        Rule::H003BarrierDivergence,
        Rule::H004ConflictingPuts,
        Rule::H005StaleStoreRead,
        Rule::H006PrefetchOrderMisuse,
        Rule::H007OutOfBounds,
        Rule::P001ElementLoopTransfer,
        Rule::P002SameBankStride,
        Rule::P003NonMergingByteWrites,
        Rule::P004EagerSync,
        Rule::P005PrefetchQueueOverflow,
    ];

    /// Stable rule ID (`T3D-H001`…) — tests and JSON output pin these.
    pub fn id(self) -> &'static str {
        match self {
            Rule::H001ReadBeforeGetSync => "T3D-H001",
            Rule::H002UnbalancedStoreSync => "T3D-H002",
            Rule::H003BarrierDivergence => "T3D-H003",
            Rule::H004ConflictingPuts => "T3D-H004",
            Rule::H005StaleStoreRead => "T3D-H005",
            Rule::H006PrefetchOrderMisuse => "T3D-H006",
            Rule::H007OutOfBounds => "T3D-H007",
            Rule::P001ElementLoopTransfer => "T3D-P001",
            Rule::P002SameBankStride => "T3D-P002",
            Rule::P003NonMergingByteWrites => "T3D-P003",
            Rule::P004EagerSync => "T3D-P004",
            Rule::P005PrefetchQueueOverflow => "T3D-P005",
        }
    }

    /// Short human name.
    pub fn name(self) -> &'static str {
        match self {
            Rule::H001ReadBeforeGetSync => "ReadBeforeGetSync",
            Rule::H002UnbalancedStoreSync => "UnbalancedStoreSync",
            Rule::H003BarrierDivergence => "BarrierDivergence",
            Rule::H004ConflictingPuts => "ConflictingPuts",
            Rule::H005StaleStoreRead => "StaleStoreRead",
            Rule::H006PrefetchOrderMisuse => "PrefetchOrderMisuse",
            Rule::H007OutOfBounds => "OutOfBounds",
            Rule::P001ElementLoopTransfer => "ElementLoopTransfer",
            Rule::P002SameBankStride => "SameBankStride",
            Rule::P003NonMergingByteWrites => "NonMergingByteWrites",
            Rule::P004EagerSync => "EagerSync",
            Rule::P005PrefetchQueueOverflow => "PrefetchQueueOverflow",
        }
    }

    /// Whether this is a correctness hazard (vs. a performance
    /// advisory). The negative corpora must be free of hazards;
    /// advisories are allowed and pinned by count.
    pub fn is_hazard(self) -> bool {
        matches!(
            self,
            Rule::H001ReadBeforeGetSync
                | Rule::H002UnbalancedStoreSync
                | Rule::H003BarrierDivergence
                | Rule::H004ConflictingPuts
                | Rule::H005StaleStoreRead
                | Rule::H006PrefetchOrderMisuse
                | Rule::H007OutOfBounds
        )
    }

    /// The paper section motivating the rule (advisory thresholds come
    /// from the measurements in that section).
    pub fn paper_ref(self) -> &'static str {
        match self {
            Rule::H001ReadBeforeGetSync => "§5.1 (binding prefetch completes at sync)",
            Rule::H002UnbalancedStoreSync => "§7.2 (storeSync counts arrived bytes)",
            Rule::H003BarrierDivergence => "§2 (dedicated barrier network is global)",
            Rule::H004ConflictingPuts => "§5 (puts complete in arbitrary order)",
            Rule::H005StaleStoreRead => "§5/§7 (split-phase data binds at sync)",
            Rule::H006PrefetchOrderMisuse => "§5.1 (prefetch binds the value at issue)",
            Rule::H007OutOfBounds => "§3.2 (48-bit local-address window)",
            Rule::P001ElementLoopTransfer => "§6.1 (BLT/prefetch bulk crossovers)",
            Rule::P002SameBankStride => "§2 (16 KB strides hit the same DRAM page)",
            Rule::P003NonMergingByteWrites => "§4.5 (4-entry write buffer merges by line)",
            Rule::P004EagerSync => "§5.2 (overlap needs batched split-phase ops)",
            Rule::P005PrefetchQueueOverflow => "§5.1 (16-deep binding prefetch queue)",
        }
    }

    /// The static rules that cover a dynamic `t3dsan` diagnostic kind:
    /// on a straight-line program, any dynamic report of `kind` must be
    /// accompanied by a static report of one of these rules. The match
    /// is exhaustive so a new dynamic kind fails compilation here until
    /// it is mapped.
    pub fn covers(kind: DiagKind) -> &'static [Rule] {
        match kind {
            DiagKind::ReadBeforeGetSync => &[Rule::H001ReadBeforeGetSync],
            DiagKind::StaleStoreRead => &[
                Rule::H005StaleStoreRead,
                Rule::H001ReadBeforeGetSync,
                Rule::H006PrefetchOrderMisuse,
            ],
            DiagKind::ConflictingPuts => &[Rule::H004ConflictingPuts],
            DiagKind::PrefetchOrderMisuse => &[Rule::H006PrefetchOrderMisuse],
            // Annex-register synonym state is invisible in the ScOp IR
            // (it depends on the runtime's annex policy, not the
            // program); the dynamic sanitizer remains the only detector.
            DiagKind::AnnexSynonymHazard => &[],
        }
    }
}

impl std::fmt::Display for Rule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({})", self.id(), self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_stable_and_unique() {
        let ids: Vec<&str> = Rule::ALL.iter().map(|r| r.id()).collect();
        assert_eq!(ids.len(), 12);
        for (i, id) in ids.iter().enumerate() {
            assert!(id.starts_with("T3D-"), "{id}");
            assert!(!ids[..i].contains(id), "duplicate {id}");
        }
        assert_eq!(Rule::ALL.iter().filter(|r| r.is_hazard()).count(), 7);
    }

    #[test]
    fn every_dynamic_kind_is_mapped_or_documented() {
        for kind in DiagKind::ALL {
            let rules = Rule::covers(kind);
            if kind == DiagKind::AnnexSynonymHazard {
                assert!(rules.is_empty());
            } else {
                assert!(!rules.is_empty(), "{kind:?} has no static cover");
                assert!(rules.iter().all(|r| r.is_hazard()));
            }
        }
    }
}
