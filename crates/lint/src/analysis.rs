//! The dataflow pass: per-PE abstract walk plus cross-PE epoch checks.
//!
//! # Abstract domain
//!
//! Each PE's stream is walked once, tracking: outstanding gets (landing
//! and source spans, prefetch-queue depth), outstanding split-phase op
//! count, held locks, signaling-store byte balance, and the advisory
//! run trackers. Positions are `(round, pos)`: `round` is a global
//! counter bumped at every collective marker ([`RecEvent::Barrier`],
//! [`RecEvent::AllStoreSync`], [`RecEvent::PhaseEnd`]), `pos` the index
//! in the PE's own stream. Two events are *definitely ordered* iff
//! their rounds differ or they share a PE — exactly the order the
//! sharded engine's effect-log merge guarantees, which is the order the
//! dynamic sanitizer analyzes in. Anything not definitely ordered may
//! interleave either way, so the hazard checks treat it as concurrent.
//!
//! Barriers additionally bump the *epoch*: the dynamic analyzer joins
//! all clocks and marks every write synced at a barrier, so cross-PE
//! conflict/staleness checks never span an epoch boundary. Outstanding
//! gets survive barriers (the queue drains only at the issuer's own
//! `sync`), so the prefetch-order check does span epochs.
//!
//! # Mirroring `t3dsan`
//!
//! Writes carry the completion class the runtime reports dynamically:
//! blocking writes (`write_u64`, `bulk_write*`) are born synced and can
//! never be stale; split-phase puts settle at the issuer's `sync` (or
//! any AM deposit, which fences); signaling stores settle when the
//! *target* issues `store_sync`; AM-routed ops (`am_add`, remote
//! byte/u32 writes) are handler effects the sanitizer never sees, so
//! they are excluded from the hazard sets but still count toward the
//! `store_sync` byte watermark (every deposit moves
//! [`splitc::runtime::AM_SLOT_BYTES`] of remote-write traffic).

use crate::program::LintProgram;
use crate::report::{LintDiagnostic, LintReport};
use crate::rules::Rule;
use splitc::runtime::AM_SLOT_BYTES;
use splitc::{AddrSpan, RecEvent, ScOp, SplitcConfig};
use std::collections::HashMap;
use t3d_machine::MachineConfig;

/// A stream position: global round plus index in the PE's own stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Loc {
    pe: u32,
    epoch: u32,
    round: u32,
    pos: u32,
}

/// Whether `a` is definitely analyzed before `b` under every
/// interleaving the engine can produce.
fn def_before(a: Loc, b: Loc) -> bool {
    a.round < b.round || (a.round == b.round && a.pe == b.pe && a.pos < b.pos)
}

/// Completion discipline of a write, as the sanitizer models it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WClass {
    /// Signaling store: settles at the *target*'s `store_sync`.
    Store,
    /// Split-phase put: settles at the *issuer*'s `sync` / AM deposit.
    Put,
    /// Acknowledged blocking write: born settled.
    Blocking,
    /// AM-routed sub-word write: invisible to the sanitizer, but two of
    /// them from different senders still race at the handler.
    SubWord,
}

#[derive(Debug, Clone)]
struct WRec {
    loc: Loc,
    span: AddrSpan,
    class: WClass,
    /// The lock word guarding this write, when it sits inside an
    /// atomic guarded composite. Bare `LockTryAcquire` confers nothing:
    /// the ops after it execute whether or not the acquire won, so only
    /// the composite — whose write happens iff its acquire succeeded —
    /// provides real mutual exclusion.
    guard: Option<(u32, u64)>,
    what: &'static str,
}

#[derive(Debug, Clone, Copy)]
struct RRec {
    loc: Loc,
    span: AddrSpan,
}

#[derive(Debug, Clone)]
struct GRec {
    issue: Loc,
    complete: Option<Loc>,
    src: AddrSpan,
    land: AddrSpan,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SettleKind {
    /// The writer fenced its own split-phase traffic (`sync` or any AM
    /// deposit): its puts and stores are settled past this point.
    WriterSync,
    /// This PE consumed inbound signaling stores (`store_sync`): every
    /// store targeting it that is ordered before is settled.
    TargetStoreSync,
}

#[derive(Debug, Clone, Copy)]
struct SettleRec {
    loc: Loc,
    kind: SettleKind,
}

#[derive(Debug, Clone, Copy)]
struct SyncRec {
    loc: Loc,
    bytes: u64,
}

/// Diagnostic accumulator with site folding (same key → count bump).
#[derive(Default)]
struct Sink {
    index: HashMap<(Rule, u32, u32, u64), usize>,
    diags: Vec<LintDiagnostic>,
}

impl Sink {
    fn emit(
        &mut self,
        rule: Rule,
        pe: u32,
        target: u32,
        addr: u64,
        op_idx: usize,
        detail: impl FnOnce() -> String,
    ) {
        let key = (rule, pe, target, addr);
        if let Some(&i) = self.index.get(&key) {
            self.diags[i].count += 1;
            return;
        }
        self.index.insert(key, self.diags.len());
        self.diags.push(LintDiagnostic {
            rule,
            pe,
            target,
            addr,
            op_idx,
            count: 1,
            detail: detail(),
        });
    }
}

/// Statically analyzes `prog` against the machine and runtime
/// configuration the program would run under.
pub fn lint(prog: &LintProgram, mcfg: &MachineConfig, scfg: &SplitcConfig) -> LintReport {
    let nodes = prog.nodes();
    let mut sink = Sink::default();
    let events: u64 = prog.len() as u64;

    // ---- Collective alignment (H003) --------------------------------
    // Every marker is a collective: all PEs must execute the same
    // sequence or some PE waits forever. Analysis proceeds over the
    // longest aligned prefix.
    let marker_seq = |s: &[RecEvent]| -> Vec<RecEvent> {
        s.iter()
            .filter(|e| !matches!(e, RecEvent::Op(_)))
            .copied()
            .collect()
    };
    let seqs: Vec<Vec<RecEvent>> = prog.streams.iter().map(|s| marker_seq(s)).collect();
    let mut aligned_markers = seqs.first().map_or(0, Vec::len);
    let mut diverged = false;
    if let Some(first) = seqs.first() {
        for (pe, seq) in seqs.iter().enumerate().skip(1) {
            let common = first
                .iter()
                .zip(seq.iter())
                .take_while(|(a, b)| a == b)
                .count();
            if common < first.len().max(seq.len()) {
                diverged = true;
                aligned_markers = aligned_markers.min(common);
                sink.emit(Rule::H003BarrierDivergence, pe as u32, 0, 0, common, || {
                    format!(
                        "PE{pe} collective sequence diverges from PE0 at collective {common} \
                             (PE0: {:?} vs PE{pe}: {:?})",
                        first.get(common),
                        seq.get(common),
                    )
                });
            }
        }
    }

    // ---- Per-PE abstract walk ---------------------------------------
    let mut writes: Vec<WRec> = Vec::new();
    let mut reads: Vec<RRec> = Vec::new();
    let mut gets: Vec<GRec> = Vec::new();
    let mut settles: Vec<SettleRec> = Vec::new();
    let mut store_syncs: Vec<Vec<SyncRec>> = vec![Vec::new(); nodes as usize];
    // avail[epoch][pe]: remote write-buffer bytes destined to `pe`
    // issued during `epoch` — what the storeSync watermark can consume.
    let mut avail: Vec<Vec<u64>> = Vec::new();

    let prefetch_depth = mcfg.shell.prefetch_depth;
    let line_bytes = mcfg.mem.l1.line as u64;
    let wbuf_entries = mcfg.mem.wbuf.entries as u64;
    let page = mcfg.mem.dram.page_bytes;
    let banks = mcfg.mem.dram.banks;

    for (pe_us, stream) in prog.streams.iter().enumerate() {
        let pe = pe_us as u32;
        let mut epoch: u32 = 0;
        let mut round: u32 = 0;
        let mut markers_seen = 0usize;
        // Outstanding split-phase state.
        let mut open_gets: Vec<GRec> = Vec::new();
        let mut queue_depth: usize = 0;
        let mut open_puts: usize = 0;
        // Advisory run trackers.
        let mut read_run: u64 = 0;
        let mut read_run_start: Option<(usize, AddrSpan)> = None;
        let mut get_run_bytes: u64 = 0;
        let mut get_run_start: Option<(usize, AddrSpan)> = None;
        let mut subword_run: u64 = 0;
        let mut subword_last_line: Option<(u32, u64)> = None;
        let mut subword_start: Option<(usize, AddrSpan)> = None;
        let mut prev_was_get_issue = false;

        for (idx, ev) in stream.iter().enumerate() {
            if diverged && markers_seen >= aligned_markers {
                break;
            }
            let op = match ev {
                RecEvent::Op(op) => op,
                RecEvent::Barrier | RecEvent::AllStoreSync | RecEvent::PhaseEnd => {
                    markers_seen += 1;
                    round += 1;
                    if !matches!(ev, RecEvent::PhaseEnd) {
                        epoch += 1;
                        // The global barrier fences write buffers but
                        // leaves the prefetch queue bound.
                    }
                    read_run = 0;
                    read_run_start = None;
                    get_run_bytes = 0;
                    get_run_start = None;
                    subword_run = 0;
                    subword_last_line = None;
                    prev_was_get_issue = false;
                    continue;
                }
            };
            let here = Loc {
                pe,
                epoch,
                round,
                pos: idx as u32,
            };
            while avail.len() <= epoch as usize {
                avail.push(vec![0; nodes as usize]);
            }
            let fp = op.touched_addrs(pe, mcfg);
            if fp.oob {
                let s = fp.reads.iter().chain(fp.writes.iter()).find(|s| {
                    s.pe >= nodes
                        || s.addr
                            .checked_add(s.bytes)
                            .is_none_or(|e| e > mcfg.mem.mem_bytes as u64)
                });
                let (t, a) = s.map_or((pe, 0), |s| (s.pe, s.addr));
                sink.emit(Rule::H007OutOfBounds, pe, t, a, idx, || {
                    format!(
                        "footprint outside the machine ({} PEs x {} B local memory)",
                        nodes, mcfg.mem.mem_bytes
                    )
                });
            }

            // Advisory run bookkeeping defaults: most ops break runs.
            let mut keep_read_run = false;
            let mut keep_get_run = false;
            let mut keep_subword_run = false;
            let mut record_read = |span: AddrSpan, reads: &mut Vec<RRec>| {
                // H001: reading a landing word before the issuer's sync.
                for g in &open_gets {
                    if span.overlaps(&g.land) {
                        sink.emit(
                            Rule::H001ReadBeforeGetSync,
                            pe,
                            span.pe,
                            span.addr,
                            idx,
                            || {
                                format!(
                                "reads the landing span of the get bound at op {} before sync()",
                                g.issue.pos
                            )
                            },
                        );
                    }
                }
                reads.push(RRec { loc: here, span });
            };

            // Exhaustive over `ScOp` on purpose: a new variant must be
            // classified here before the crate compiles again.
            match *op {
                ScOp::Advance { .. } | ScOp::AmPoll | ScOp::LockIsHeld { .. } => {
                    keep_read_run = true;
                    keep_get_run = true;
                }
                ScOp::ReadU64 { .. } | ScOp::ReadU32 { .. } | ScOp::ByteRead { .. } => {
                    let span = fp.reads[0];
                    record_read(span, &mut reads);
                    keep_get_run = true;
                    if span.pe != pe {
                        keep_read_run = true;
                        if read_run == 0 {
                            read_run_start = Some((idx, span));
                        }
                        read_run += 1;
                        if read_run == prefetch_depth as u64 {
                            let (sidx, sspan) = read_run_start.unwrap_or((idx, span));
                            sink.emit(
                                Rule::P001ElementLoopTransfer,
                                pe,
                                sspan.pe,
                                sspan.addr,
                                sidx,
                                || {
                                    format!(
                                        "{read_run}+ consecutive blocking remote reads: pipeline \
                                         with gets (queue depth {prefetch_depth}) or use bulk_read \
                                         (BLT past {} B)",
                                        scfg.bulk_blt_read_min
                                    )
                                },
                            );
                        }
                    } else {
                        keep_read_run = true;
                    }
                }
                ScOp::WriteU64 { .. } => {
                    let span = fp.writes[0];
                    push_write(
                        &mut writes,
                        &mut avail,
                        here,
                        span,
                        WClass::Blocking,
                        "write_u64",
                    );
                    keep_read_run = true;
                    keep_get_run = true;
                }
                ScOp::StoreU64 { .. } => {
                    let span = fp.writes[0];
                    push_write(
                        &mut writes,
                        &mut avail,
                        here,
                        span,
                        WClass::Store,
                        "store_u64",
                    );
                    keep_read_run = true;
                    keep_get_run = true;
                }
                ScOp::Put { .. } => {
                    let span = fp.writes[0];
                    push_write(&mut writes, &mut avail, here, span, WClass::Put, "put");
                    open_puts += 1;
                    keep_read_run = true;
                    keep_get_run = true;
                }
                ScOp::Get { .. } => {
                    let src = fp.reads[0];
                    let land = fp.writes[0];
                    record_read(src, &mut reads);
                    if queue_depth == prefetch_depth {
                        // Hardware auto-drain: the queue empties (gets
                        // complete) before this issue fits.
                        sink.emit(
                            Rule::P005PrefetchQueueOverflow,
                            pe,
                            src.pe,
                            src.addr,
                            idx,
                            || {
                                format!(
                                "more than {prefetch_depth} gets outstanding: the binding queue \
                                 drains mid-stream, serializing the pipeline — batch at most \
                                 {prefetch_depth} before sync()"
                            )
                            },
                        );
                        for mut g in open_gets.drain(..) {
                            g.complete = Some(here);
                            gets.push(g);
                        }
                        queue_depth = 0;
                    }
                    open_gets.push(GRec {
                        issue: here,
                        complete: None,
                        src,
                        land,
                    });
                    queue_depth += 1;
                    keep_read_run = true;
                    keep_get_run = true;
                    if get_run_bytes == 0 {
                        get_run_start = Some((idx, src));
                    }
                    let before = get_run_bytes;
                    get_run_bytes += src.bytes;
                    if before < scfg.bulk_get_blt_min && get_run_bytes >= scfg.bulk_get_blt_min {
                        let (sidx, sspan) = get_run_start.unwrap_or((idx, src));
                        sink.emit(
                            Rule::P001ElementLoopTransfer,
                            pe,
                            sspan.pe,
                            sspan.addr,
                            sidx,
                            || {
                                format!(
                                    "element-get loop moved {get_run_bytes} B, past the {} B \
                                 get/BLT crossover: one bulk_get is faster",
                                    scfg.bulk_get_blt_min
                                )
                            },
                        );
                    }
                }
                ScOp::Sync => {
                    // An element-get loop drains its queue periodically;
                    // the P001 byte run deliberately survives the sync.
                    keep_read_run = true;
                    keep_get_run = true;
                    if open_puts == 0 && queue_depth == 1 && prev_was_get_issue {
                        let g = &open_gets[open_gets.len() - 1];
                        sink.emit(Rule::P004EagerSync, pe, g.src.pe, g.src.addr, idx, || {
                            "sync() immediately after a lone get: no overlap — batch more \
                             split-phase traffic before syncing"
                                .to_string()
                        });
                    }
                    for mut g in open_gets.drain(..) {
                        g.complete = Some(here);
                        gets.push(g);
                    }
                    queue_depth = 0;
                    open_puts = 0;
                    settles.push(SettleRec {
                        loc: here,
                        kind: SettleKind::WriterSync,
                    });
                }
                ScOp::StoreSync { bytes } => {
                    store_syncs[pe_us].push(SyncRec { loc: here, bytes });
                    settles.push(SettleRec {
                        loc: here,
                        kind: SettleKind::TargetStoreSync,
                    });
                }
                ScOp::BulkRead { .. } | ScOp::BulkReadStrided { .. } => {
                    let src = fp.reads[0];
                    record_read(src, &mut reads);
                    if let ScOp::BulkReadStrided {
                        count,
                        stride_bytes,
                        ..
                    } = *op
                    {
                        check_stride(&mut sink, pe, src, idx, count, stride_bytes, page, banks);
                    }
                }
                ScOp::BulkGet { .. } => {
                    let src = fp.reads[0];
                    let land = fp.writes[0];
                    record_read(src, &mut reads);
                    // Bulk gets manage the queue internally (prefetch
                    // loop or BLT) — they occupy one logical slot and
                    // complete at sync() like element gets.
                    open_gets.push(GRec {
                        issue: here,
                        complete: None,
                        src,
                        land,
                    });
                    open_puts += 1; // counts as batched split-phase traffic
                }
                ScOp::BulkWrite { .. } | ScOp::BulkWriteStrided { .. } => {
                    let dst = fp.writes[0];
                    push_write(
                        &mut writes,
                        &mut avail,
                        here,
                        dst,
                        WClass::Blocking,
                        "bulk_write",
                    );
                    if let ScOp::BulkWriteStrided {
                        count,
                        stride_bytes,
                        ..
                    } = *op
                    {
                        check_stride(&mut sink, pe, dst, idx, count, stride_bytes, page, banks);
                    }
                }
                ScOp::BulkPut { .. } => {
                    let dst = fp.writes[0];
                    push_write(&mut writes, &mut avail, here, dst, WClass::Put, "bulk_put");
                    open_puts += 1;
                }
                ScOp::ByteWrite { .. } | ScOp::WriteU32 { .. } => {
                    let span = fp.writes[0];
                    if span.pe != pe {
                        // Travels the AM queue: the deposit fences the
                        // issuer's earlier split-phase writes.
                        settles.push(SettleRec {
                            loc: here,
                            kind: SettleKind::WriterSync,
                        });
                        avail[epoch as usize][span.pe as usize] += AM_SLOT_BYTES;
                        writes.push(WRec {
                            loc: here,
                            span,
                            class: WClass::SubWord,
                            guard: None,
                            what: "byte/u32 write",
                        });
                    } else {
                        push_write(
                            &mut writes,
                            &mut avail,
                            here,
                            span,
                            WClass::Blocking,
                            "byte/u32 write",
                        );
                    }
                    keep_read_run = true;
                    keep_get_run = true;
                    keep_subword_run = true;
                    let key = (span.pe, span.addr / line_bytes);
                    if subword_last_line == Some(key) {
                        // Same line: the write buffer merges these.
                        subword_run = 1;
                        subword_start = Some((idx, span));
                    } else {
                        if subword_run == 0 {
                            subword_start = Some((idx, span));
                        }
                        subword_run += 1;
                        if subword_run == wbuf_entries {
                            let (sidx, sspan) = subword_start.unwrap_or((idx, span));
                            sink.emit(
                                Rule::P003NonMergingByteWrites,
                                pe,
                                sspan.pe,
                                sspan.addr,
                                sidx,
                                || {
                                    format!(
                                        "{subword_run}+ consecutive sub-word writes to distinct \
                                     {line_bytes} B lines: nothing merges in the \
                                     {wbuf_entries}-entry write buffer — group writes by line"
                                    )
                                },
                            );
                        }
                    }
                    subword_last_line = Some(key);
                }
                ScOp::AmAdd { target_pe, .. } => {
                    // Handler-side effect: invisible to the sanitizer
                    // (commutes, lands by the next barrier), but the
                    // deposit itself fences and moves slot bytes.
                    settles.push(SettleRec {
                        loc: here,
                        kind: SettleKind::WriterSync,
                    });
                    if target_pe != pe && (target_pe as usize) < avail[epoch as usize].len() {
                        avail[epoch as usize][target_pe as usize] += AM_SLOT_BYTES;
                    }
                    keep_read_run = true;
                    keep_get_run = true;
                }
                ScOp::LockTryAcquire { .. }
                | ScOp::LockRelease { .. }
                | ScOp::LockFreeIfHeld { .. } => {}
                ScOp::LockGuardedWrite { word, .. } => {
                    let span = fp.writes[0];
                    writes.push(WRec {
                        loc: here,
                        span,
                        class: WClass::Blocking,
                        guard: Some((word.pe(), word.addr())),
                        what: "lock-guarded write",
                    });
                    if span.pe != pe {
                        avail[epoch as usize][span.pe as usize] += 8;
                    }
                }
            }

            prev_was_get_issue = matches!(op, ScOp::Get { .. });
            if !keep_read_run {
                read_run = 0;
                read_run_start = None;
            }
            if !keep_get_run {
                get_run_bytes = 0;
                get_run_start = None;
            }
            if !keep_subword_run {
                subword_run = 0;
                subword_last_line = None;
                subword_start = None;
            }
        }
        // Gets never completed still participate in ordering checks.
        gets.extend(open_gets);
    }

    // ---- H002: storeSync byte balance -------------------------------
    // A store_sync waits until the cumulative arrival watermark reaches
    // the consumed total. Writes from epochs after the sync's cannot
    // arrive (their issuers are blocked behind the deadlocked barrier),
    // so consuming more than all epochs up to the sync's can ever
    // deliver is a definite deadlock.
    for (pe_us, syncs) in store_syncs.iter().enumerate() {
        let mut consumed: u64 = 0;
        for s in syncs {
            consumed += s.bytes;
            let available: u64 = avail
                .iter()
                .take(s.loc.epoch as usize + 1)
                .map(|per_pe| per_pe[pe_us])
                .sum();
            if consumed > available {
                sink.emit(
                    Rule::H002UnbalancedStoreSync,
                    pe_us as u32,
                    pe_us as u32,
                    0,
                    s.loc.pos as usize,
                    || {
                        format!(
                            "store_sync waits for {consumed} cumulative bytes but at most \
                             {available} can ever arrive: storeSync deadlock"
                        )
                    },
                );
            }
        }
    }

    // ---- Cross-PE epoch checks --------------------------------------
    // Bucket by (epoch, target PE) so the pairwise scans stay local.
    let mut w_by_bucket: HashMap<(u32, u32), Vec<usize>> = HashMap::new();
    for (i, w) in writes.iter().enumerate() {
        w_by_bucket
            .entry((w.loc.epoch, w.span.pe))
            .or_default()
            .push(i);
    }

    // H004: unordered overlapping writes from different PEs.
    for idxs in w_by_bucket.values() {
        for (a, &i) in idxs.iter().enumerate() {
            for &j in &idxs[a + 1..] {
                let (w1, w2) = (&writes[i], &writes[j]);
                if w1.loc.pe == w2.loc.pe || !w1.span.overlaps(&w2.span) {
                    continue;
                }
                // Sub-word AM writes race only against each other (the
                // word-grain classes are invisible to their handler).
                let visible =
                    |c: WClass| matches!(c, WClass::Store | WClass::Put | WClass::Blocking);
                let eligible = (visible(w1.class) && visible(w2.class))
                    || (w1.class == WClass::SubWord && w2.class == WClass::SubWord);
                if !eligible {
                    continue;
                }
                // The same guarding lock orders the pair: both critical
                // sections are atomic and hand the clock over.
                if w1.guard.is_some() && w1.guard == w2.guard {
                    continue;
                }
                let (first, second) = if def_before(w2.loc, w1.loc) {
                    (w2, w1)
                } else {
                    (w1, w2)
                };
                let (fw, fpe, what) = (first.loc.pos, first.loc.pe, first.what);
                sink.emit(
                    Rule::H004ConflictingPuts,
                    second.loc.pe,
                    second.span.pe,
                    second.span.addr.max(first.span.addr),
                    second.loc.pos as usize,
                    || {
                        format!(
                            "unordered against {what} by PE{fpe} at op {fw}: final bytes depend \
                             on arrival order"
                        )
                    },
                );
            }
        }
    }

    // H005: a read that can observe an unsettled put or store.
    for r in &reads {
        let Some(idxs) = w_by_bucket.get(&(r.loc.epoch, r.span.pe)) else {
            continue;
        };
        for &i in idxs {
            let w = &writes[i];
            if w.loc.pe == r.loc.pe
                || !matches!(w.class, WClass::Store | WClass::Put)
                || !w.span.overlaps(&r.span)
                || def_before(r.loc, w.loc)
            {
                continue;
            }
            let settled = settles.iter().any(|s| {
                let applies = match s.kind {
                    SettleKind::WriterSync => s.loc.pe == w.loc.pe,
                    SettleKind::TargetStoreSync => {
                        w.class == WClass::Store && s.loc.pe == w.span.pe
                    }
                };
                applies && def_before(w.loc, s.loc) && def_before(s.loc, r.loc)
            });
            if settled {
                continue;
            }
            let (wpe, wpos, what, class) = (w.loc.pe, w.loc.pos, w.what, w.class);
            sink.emit(
                Rule::H005StaleStoreRead,
                r.loc.pe,
                r.span.pe,
                r.span.addr.max(w.span.addr),
                r.loc.pos as usize,
                || {
                    let fix = match class {
                        WClass::Put => "writer has not sync()ed first",
                        _ => "target has not store_sync()ed first",
                    };
                    format!("may observe un-synced {what} by PE{wpe} at op {wpos} ({fix})")
                },
            );
        }
    }

    // H006: a write that can land on a bound get's source.
    for g in &gets {
        for w in &writes {
            if !matches!(w.class, WClass::Store | WClass::Put | WClass::Blocking)
                || w.span.pe != g.src.pe
                || !w.span.overlaps(&g.src)
                || def_before(w.loc, g.issue)
            {
                continue;
            }
            if let Some(c) = g.complete {
                if def_before(c, w.loc) {
                    continue;
                }
            }
            let (wpe, wpos, what) = (w.loc.pe, w.loc.pos, w.what);
            sink.emit(
                Rule::H006PrefetchOrderMisuse,
                g.issue.pe,
                g.src.pe,
                g.src.addr,
                g.issue.pos as usize,
                || {
                    format!(
                        "{what} by PE{wpe} at op {wpos} can land on the source while the get \
                         is bound: the popped value would predate it"
                    )
                },
            );
        }
    }

    let mut diags = sink.diags;
    diags.sort_by_key(|d| (!d.rule.is_hazard(), d.rule, d.pe, d.op_idx));
    LintReport {
        diagnostics: diags,
        events_processed: events,
    }
}

fn push_write(
    writes: &mut Vec<WRec>,
    avail: &mut [Vec<u64>],
    loc: Loc,
    span: AddrSpan,
    class: WClass,
    what: &'static str,
) {
    if span.pe != loc.pe && (span.pe as usize) < avail[loc.epoch as usize].len() {
        avail[loc.epoch as usize][span.pe as usize] += span.bytes;
    }
    writes.push(WRec {
        loc,
        span,
        class,
        guard: None,
        what,
    });
}

#[allow(clippy::too_many_arguments)]
fn check_stride(
    sink: &mut Sink,
    pe: u32,
    span: AddrSpan,
    idx: usize,
    count: u64,
    stride_bytes: u64,
    page: u64,
    banks: u64,
) {
    if count >= 2
        && page > 0
        && banks > 0
        && stride_bytes >= page
        && stride_bytes.is_multiple_of(page)
        && (stride_bytes / page).is_multiple_of(banks)
    {
        sink.emit(
            Rule::P002SameBankStride,
            pe,
            span.pe,
            span.addr,
            idx,
            || {
                format!(
                    "stride {stride_bytes} B lands every element on the same DRAM bank with an \
                 off-page access each time ({page} B pages, {banks} banks): pad the stride"
                )
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splitc::GlobalPtr;

    fn cfgs() -> (MachineConfig, SplitcConfig) {
        (MachineConfig::t3d(4), SplitcConfig::default())
    }

    fn run(prog: &LintProgram) -> LintReport {
        let (m, s) = cfgs();
        lint(prog, &m, &s)
    }

    fn rules_of(r: &LintReport) -> Vec<Rule> {
        r.rules()
    }

    #[test]
    fn empty_program_is_clean() {
        let r = run(&LintProgram::new(4));
        assert!(r.is_empty(), "{}", r.render_table());
    }

    #[test]
    fn h001_read_of_landing_before_sync() {
        let mut p = LintProgram::new(4);
        p.push(
            0,
            ScOp::Get {
                local_off: 64,
                src: GlobalPtr::new(1, 128),
            },
        );
        p.push(
            0,
            ScOp::ReadU64 {
                src: GlobalPtr::new(0, 64),
            },
        );
        p.push(0, ScOp::Sync);
        let r = run(&p);
        assert_eq!(rules_of(&r), vec![Rule::H001ReadBeforeGetSync]);
    }

    #[test]
    fn h001_clean_after_sync() {
        let mut p = LintProgram::new(4);
        p.push(
            0,
            ScOp::Get {
                local_off: 64,
                src: GlobalPtr::new(1, 128),
            },
        );
        p.push(0, ScOp::Sync);
        p.push(
            0,
            ScOp::ReadU64 {
                src: GlobalPtr::new(0, 64),
            },
        );
        let r = run(&p);
        assert!(r.is_hazard_free(), "{}", r.render_table());
    }

    #[test]
    fn h002_store_sync_with_no_matching_stores() {
        let mut p = LintProgram::new(4);
        p.push(0, ScOp::StoreSync { bytes: 8 });
        let r = run(&p);
        assert_eq!(rules_of(&r), vec![Rule::H002UnbalancedStoreSync]);
    }

    #[test]
    fn h002_balanced_stores_are_clean() {
        let mut p = LintProgram::new(4);
        p.push(
            1,
            ScOp::StoreU64 {
                dst: GlobalPtr::new(0, 64),
                value: 7,
            },
        );
        p.push(0, ScOp::StoreSync { bytes: 8 });
        let r = run(&p);
        assert!(r.is_hazard_free(), "{}", r.render_table());
    }

    #[test]
    fn h002_catches_cross_epoch_shortfall_but_not_later_arrivals() {
        // Stores sent in a *later* epoch cannot satisfy an earlier
        // store_sync: the storer is blocked at the barrier behind it.
        let mut p = LintProgram::new(4);
        p.push(0, ScOp::StoreSync { bytes: 8 });
        p.push_all(RecEvent::Barrier);
        p.push(
            1,
            ScOp::StoreU64 {
                dst: GlobalPtr::new(0, 64),
                value: 7,
            },
        );
        let r = run(&p);
        assert_eq!(rules_of(&r), vec![Rule::H002UnbalancedStoreSync]);
    }

    #[test]
    fn h003_divergent_collectives() {
        let mut p = LintProgram::new(2);
        p.streams[0].push(RecEvent::Barrier);
        p.streams[1].push(RecEvent::PhaseEnd);
        let r = run(&p);
        assert_eq!(rules_of(&r), vec![Rule::H003BarrierDivergence]);
    }

    #[test]
    fn h003_extra_barrier_on_one_pe() {
        let mut p = LintProgram::new(2);
        p.streams[0].push(RecEvent::Barrier);
        p.streams[1].push(RecEvent::Barrier);
        p.streams[1].push(RecEvent::Barrier);
        let r = run(&p);
        assert_eq!(rules_of(&r), vec![Rule::H003BarrierDivergence]);
    }

    #[test]
    fn h004_unordered_overlapping_puts() {
        let mut p = LintProgram::new(4);
        p.push(
            0,
            ScOp::Put {
                dst: GlobalPtr::new(2, 64),
                value: 1,
            },
        );
        p.push(0, ScOp::Sync);
        p.push(
            1,
            ScOp::Put {
                dst: GlobalPtr::new(2, 64),
                value: 2,
            },
        );
        p.push(1, ScOp::Sync);
        let r = run(&p);
        assert!(
            rules_of(&r).contains(&Rule::H004ConflictingPuts),
            "{}",
            r.render_table()
        );
    }

    #[test]
    fn h004_barrier_separates_writers() {
        let mut p = LintProgram::new(4);
        p.push(
            0,
            ScOp::Put {
                dst: GlobalPtr::new(2, 64),
                value: 1,
            },
        );
        p.push(0, ScOp::Sync);
        p.push_all(RecEvent::Barrier);
        p.push(
            1,
            ScOp::Put {
                dst: GlobalPtr::new(2, 64),
                value: 2,
            },
        );
        p.push(1, ScOp::Sync);
        let r = run(&p);
        assert!(r.is_hazard_free(), "{}", r.render_table());
    }

    #[test]
    fn h004_common_lock_orders_the_writers() {
        let lock = GlobalPtr::new(3, 8);
        let dst = GlobalPtr::new(2, 64);
        let mut p = LintProgram::new(4);
        p.push(
            0,
            ScOp::LockGuardedWrite {
                word: lock,
                dst,
                value: 1,
            },
        );
        p.push(
            1,
            ScOp::LockGuardedWrite {
                word: lock,
                dst,
                value: 2,
            },
        );
        let r = run(&p);
        assert!(r.is_hazard_free(), "{}", r.render_table());
        // Different locks do not order them.
        let mut p2 = LintProgram::new(4);
        p2.push(
            0,
            ScOp::LockGuardedWrite {
                word: lock,
                dst,
                value: 1,
            },
        );
        p2.push(
            1,
            ScOp::LockGuardedWrite {
                word: GlobalPtr::new(3, 16),
                dst,
                value: 2,
            },
        );
        let r2 = run(&p2);
        assert!(rules_of(&r2).contains(&Rule::H004ConflictingPuts));
    }

    #[test]
    fn h005_read_of_unsynced_put() {
        let mut p = LintProgram::new(4);
        p.push(
            0,
            ScOp::Put {
                dst: GlobalPtr::new(2, 64),
                value: 1,
            },
        );
        p.push(
            1,
            ScOp::ReadU64 {
                src: GlobalPtr::new(2, 64),
            },
        );
        let r = run(&p);
        assert!(
            rules_of(&r).contains(&Rule::H005StaleStoreRead),
            "{}",
            r.render_table()
        );
    }

    #[test]
    fn h005_settled_by_writer_sync_across_rounds() {
        // Writer puts and syncs in round 0; reader reads in round 1
        // (after a phase boundary): the sync is definitely between.
        let mut p = LintProgram::new(4);
        p.push(
            0,
            ScOp::Put {
                dst: GlobalPtr::new(2, 64),
                value: 1,
            },
        );
        p.push(0, ScOp::Sync);
        p.push_all(RecEvent::PhaseEnd);
        p.push(
            1,
            ScOp::ReadU64 {
                src: GlobalPtr::new(2, 64),
            },
        );
        let r = run(&p);
        assert!(r.is_hazard_free(), "{}", r.render_table());
    }

    #[test]
    fn h005_writer_sync_in_same_round_is_not_enough() {
        // Same round, different PEs: the reader can run before the sync.
        let mut p = LintProgram::new(4);
        p.push(
            0,
            ScOp::Put {
                dst: GlobalPtr::new(2, 64),
                value: 1,
            },
        );
        p.push(0, ScOp::Sync);
        p.push(
            1,
            ScOp::ReadU64 {
                src: GlobalPtr::new(2, 64),
            },
        );
        let r = run(&p);
        assert!(
            rules_of(&r).contains(&Rule::H005StaleStoreRead),
            "{}",
            r.render_table()
        );
    }

    #[test]
    fn h005_store_settled_by_readers_store_sync() {
        // PE1 stores to PE2 (round 0); PE2 store_syncs then reads
        // (round 1): the target's own store_sync settles the store.
        let mut p = LintProgram::new(4);
        p.push(
            1,
            ScOp::StoreU64 {
                dst: GlobalPtr::new(2, 64),
                value: 1,
            },
        );
        p.push_all(RecEvent::PhaseEnd);
        p.push(2, ScOp::StoreSync { bytes: 8 });
        p.push(
            2,
            ScOp::ReadU64 {
                src: GlobalPtr::new(2, 64),
            },
        );
        let r = run(&p);
        assert!(r.is_hazard_free(), "{}", r.render_table());
        // Without the store_sync the read is stale.
        let mut p2 = LintProgram::new(4);
        p2.push(
            1,
            ScOp::StoreU64 {
                dst: GlobalPtr::new(2, 64),
                value: 1,
            },
        );
        p2.push_all(RecEvent::PhaseEnd);
        p2.push(
            2,
            ScOp::ReadU64 {
                src: GlobalPtr::new(2, 64),
            },
        );
        let r2 = run(&p2);
        assert!(rules_of(&r2).contains(&Rule::H005StaleStoreRead));
    }

    #[test]
    fn h005_blocking_writes_are_born_settled() {
        let mut p = LintProgram::new(4);
        p.push(
            0,
            ScOp::WriteU64 {
                dst: GlobalPtr::new(2, 64),
                value: 1,
            },
        );
        p.push_all(RecEvent::PhaseEnd);
        p.push(
            1,
            ScOp::ReadU64 {
                src: GlobalPtr::new(2, 64),
            },
        );
        let r = run(&p);
        assert!(r.is_hazard_free(), "{}", r.render_table());
    }

    #[test]
    fn h006_put_lands_on_a_bound_get_source() {
        let mut p = LintProgram::new(4);
        p.push(
            0,
            ScOp::Get {
                local_off: 64,
                src: GlobalPtr::new(2, 128),
            },
        );
        p.push(0, ScOp::Sync);
        p.push(
            1,
            ScOp::WriteU64 {
                dst: GlobalPtr::new(2, 128),
                value: 9,
            },
        );
        let r = run(&p);
        assert!(
            rules_of(&r).contains(&Rule::H006PrefetchOrderMisuse),
            "{}",
            r.render_table()
        );
    }

    #[test]
    fn h006_spans_barriers_because_gets_survive_them() {
        let mut p = LintProgram::new(4);
        p.push(
            0,
            ScOp::Get {
                local_off: 64,
                src: GlobalPtr::new(2, 128),
            },
        );
        p.push_all(RecEvent::Barrier);
        p.push(
            1,
            ScOp::WriteU64 {
                dst: GlobalPtr::new(2, 128),
                value: 9,
            },
        );
        p.push_all(RecEvent::Barrier);
        p.push(0, ScOp::Sync);
        let r = run(&p);
        assert!(
            rules_of(&r).contains(&Rule::H006PrefetchOrderMisuse),
            "{}",
            r.render_table()
        );
    }

    #[test]
    fn h006_clean_when_write_precedes_issue_or_follows_sync() {
        let mut p = LintProgram::new(4);
        p.push(
            1,
            ScOp::WriteU64 {
                dst: GlobalPtr::new(2, 128),
                value: 9,
            },
        );
        p.push_all(RecEvent::Barrier);
        p.push(
            0,
            ScOp::Get {
                local_off: 64,
                src: GlobalPtr::new(2, 128),
            },
        );
        p.push(0, ScOp::Sync);
        p.push_all(RecEvent::Barrier);
        p.push(
            1,
            ScOp::WriteU64 {
                dst: GlobalPtr::new(2, 128),
                value: 10,
            },
        );
        let r = run(&p);
        assert!(r.is_hazard_free(), "{}", r.render_table());
    }

    #[test]
    fn h007_out_of_machine_footprint() {
        let (m, s) = cfgs();
        let mut p = LintProgram::new(4);
        p.push(
            0,
            ScOp::ReadU64 {
                src: GlobalPtr::new(9, 64),
            },
        );
        p.push(
            0,
            ScOp::ReadU64 {
                src: GlobalPtr::new(1, m.mem.mem_bytes as u64),
            },
        );
        let r = lint(&p, &m, &s);
        assert_eq!(rules_of(&r), vec![Rule::H007OutOfBounds]);
        assert_eq!(r.diagnostics.len(), 2);
    }

    #[test]
    fn p001_element_read_loop_past_queue_depth() {
        let (m, s) = cfgs();
        let mut p = LintProgram::new(4);
        for i in 0..m.shell.prefetch_depth as u64 {
            p.push(
                0,
                ScOp::ReadU64 {
                    src: GlobalPtr::new(1, 64 + 8 * i),
                },
            );
        }
        let r = lint(&p, &m, &s);
        assert_eq!(rules_of(&r), vec![Rule::P001ElementLoopTransfer]);
        assert!(r.is_hazard_free());
        // One fewer read stays quiet.
        let mut p2 = LintProgram::new(4);
        for i in 0..m.shell.prefetch_depth as u64 - 1 {
            p2.push(
                0,
                ScOp::ReadU64 {
                    src: GlobalPtr::new(1, 64 + 8 * i),
                },
            );
        }
        assert!(lint(&p2, &m, &s).is_empty());
    }

    #[test]
    fn p001_element_get_loop_past_blt_crossover() {
        let (m, s) = cfgs();
        let mut p = LintProgram::new(4);
        let gets = s.bulk_get_blt_min / 8 + 1;
        for i in 0..gets {
            if i % 8 == 7 {
                p.push(0, ScOp::Sync); // drain so P005 stays quiet
            }
            p.push(
                0,
                ScOp::Get {
                    local_off: 8 * i,
                    src: GlobalPtr::new(1, 8 * i),
                },
            );
        }
        p.push(0, ScOp::Sync);
        let r = lint(&p, &m, &s);
        assert!(
            rules_of(&r).contains(&Rule::P001ElementLoopTransfer),
            "{}",
            r.render_table()
        );
    }

    #[test]
    fn p002_page_times_bank_stride() {
        let (m, s) = cfgs();
        let stride = m.mem.dram.page_bytes * m.mem.dram.banks;
        let mut p = LintProgram::new(4);
        p.push(
            0,
            ScOp::BulkReadStrided {
                local_off: 0,
                src: GlobalPtr::new(1, 64),
                count: 8,
                elem_bytes: 8,
                stride_bytes: stride,
            },
        );
        let r = lint(&p, &m, &s);
        assert_eq!(rules_of(&r), vec![Rule::P002SameBankStride]);
        // A one-page stride rotates banks: clean.
        let mut p2 = LintProgram::new(4);
        p2.push(
            0,
            ScOp::BulkReadStrided {
                local_off: 0,
                src: GlobalPtr::new(1, 64),
                count: 8,
                elem_bytes: 8,
                stride_bytes: m.mem.dram.page_bytes,
            },
        );
        assert!(lint(&p2, &m, &s).is_empty());
    }

    #[test]
    fn p003_byte_writes_to_distinct_lines() {
        let (m, s) = cfgs();
        let line = m.mem.l1.line as u64;
        let mut p = LintProgram::new(4);
        for i in 0..m.mem.wbuf.entries as u64 {
            p.push(
                0,
                ScOp::ByteWrite {
                    dst: GlobalPtr::new(0, 64 + i * line),
                    value: 1,
                },
            );
        }
        let r = lint(&p, &m, &s);
        assert_eq!(rules_of(&r), vec![Rule::P003NonMergingByteWrites]);
        // Same-line writes merge: clean.
        let mut p2 = LintProgram::new(4);
        for i in 0..m.mem.wbuf.entries as u64 {
            p2.push(
                0,
                ScOp::ByteWrite {
                    dst: GlobalPtr::new(0, 64 + i),
                    value: 1,
                },
            );
        }
        assert!(lint(&p2, &m, &s).is_empty());
    }

    #[test]
    fn p004_sync_after_lone_get() {
        let mut p = LintProgram::new(4);
        p.push(
            0,
            ScOp::Get {
                local_off: 64,
                src: GlobalPtr::new(1, 128),
            },
        );
        p.push(0, ScOp::Sync);
        let r = run(&p);
        assert_eq!(rules_of(&r), vec![Rule::P004EagerSync]);
        // Two batched gets overlap: clean.
        let mut p2 = LintProgram::new(4);
        p2.push(
            0,
            ScOp::Get {
                local_off: 64,
                src: GlobalPtr::new(1, 128),
            },
        );
        p2.push(
            0,
            ScOp::Get {
                local_off: 72,
                src: GlobalPtr::new(1, 136),
            },
        );
        p2.push(0, ScOp::Sync);
        assert!(run(&p2).is_empty());
    }

    #[test]
    fn p005_queue_overflow_auto_drains() {
        let (m, s) = cfgs();
        let mut p = LintProgram::new(4);
        for i in 0..=m.shell.prefetch_depth as u64 + 1 {
            p.push(
                0,
                ScOp::Get {
                    local_off: 8 * i,
                    src: GlobalPtr::new(1, 512 + 8 * i),
                },
            );
        }
        p.push(0, ScOp::Sync);
        let r = lint(&p, &m, &s);
        assert_eq!(rules_of(&r), vec![Rule::P005PrefetchQueueOverflow]);
        assert!(r.is_hazard_free());
    }

    #[test]
    fn sites_fold_and_sort_hazards_first() {
        let mut p = LintProgram::new(4);
        p.push(
            0,
            ScOp::Get {
                local_off: 64,
                src: GlobalPtr::new(1, 128),
            },
        );
        p.push(
            0,
            ScOp::ReadU64 {
                src: GlobalPtr::new(0, 64),
            },
        );
        p.push(
            0,
            ScOp::ReadU64 {
                src: GlobalPtr::new(0, 64),
            },
        );
        p.push(0, ScOp::Sync);
        p.push(
            0,
            ScOp::Get {
                local_off: 200,
                src: GlobalPtr::new(1, 300),
            },
        );
        p.push(0, ScOp::Sync);
        let r = run(&p);
        assert_eq!(r.diagnostics.len(), 2); // folded H001 site + P004
        assert_eq!(r.diagnostics[0].rule, Rule::H001ReadBeforeGetSync);
        assert_eq!(r.diagnostics[0].count, 2);
        assert_eq!(r.diagnostics[1].rule, Rule::P004EagerSync);
        assert!(!r.render_table().is_empty());
        assert!(r.to_json().render().contains("T3D-H001"));
    }
}
