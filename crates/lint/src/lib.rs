//! # t3d-lint: static analysis for simulated CRAY-T3D Split-C programs
//!
//! The dynamic sanitizer (`t3dsan`) reports hazards the program *did*
//! hit on one run. This crate reports, before running anything, the
//! hazards a straight-line-with-barriers per-PE op program *can* hit —
//! plus the performance advisories the paper's measurements motivate
//! (bulk-transfer crossovers, DRAM bank strides, write-buffer merging,
//! prefetch-queue depth), parameterized from the live
//! [`t3d_machine::MachineConfig`] rather than hard-coded constants.
//!
//! The pipeline:
//!
//! 1. Capture a program: either record a real run with
//!    [`splitc::SplitC::record_ops`] and wrap the log in a
//!    [`LintProgram`], or assemble one directly (the fuzzer lowers its
//!    generated programs without executing them).
//! 2. [`lint`] it against a machine + runtime configuration.
//! 3. Inspect the [`LintReport`]: stable rule IDs (`T3D-H001`…,
//!    `T3D-P001`…), an aligned table, or JSON.
//!
//! Soundness contract (checked by the differential fuzzer): on
//! straight-line programs, every hazard `t3dsan` reports dynamically is
//! covered statically by a rule from [`Rule::covers`], and programs the
//! generator proves hazard-free lint clean of `H` rules.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod program;
pub mod report;
pub mod rules;

pub use analysis::lint;
pub use program::LintProgram;
pub use report::{LintDiagnostic, LintReport};
pub use rules::Rule;
