//! The analyzer's input: per-PE straight-line-with-barriers programs.
//!
//! A [`LintProgram`] is exactly the shape the runtime's op recorder
//! produces ([`splitc::SplitC::record_ops`]): one [`RecEvent`] stream
//! per PE, where [`RecEvent::Barrier`] / [`RecEvent::AllStoreSync`]
//! mark global collectives and [`RecEvent::PhaseEnd`] marks SPMD phase
//! boundaries (sequenced, but not synchronizing). Programs can also be
//! assembled directly — the fuzzer lowers its generated programs into
//! this form without executing them.

use splitc::{RecEvent, ScOp};

/// A whole-machine program: `streams[pe]` is PE `pe`'s event stream.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LintProgram {
    /// Per-PE event streams; the machine size is `streams.len()`.
    pub streams: Vec<Vec<RecEvent>>,
}

impl LintProgram {
    /// An empty program for `nodes` PEs.
    pub fn new(nodes: u32) -> Self {
        LintProgram {
            streams: vec![Vec::new(); nodes as usize],
        }
    }

    /// Wraps a recorded run ([`splitc::SplitC::take_op_log`]).
    pub fn from_recorded(streams: Vec<Vec<RecEvent>>) -> Self {
        LintProgram { streams }
    }

    /// Number of PEs.
    pub fn nodes(&self) -> u32 {
        self.streams.len() as u32
    }

    /// Appends an op to one PE's stream.
    pub fn push(&mut self, pe: u32, op: ScOp) {
        self.streams[pe as usize].push(RecEvent::Op(op));
    }

    /// Appends a marker to every PE's stream (a global collective or a
    /// phase boundary).
    pub fn push_all(&mut self, marker: RecEvent) {
        for s in &mut self.streams {
            s.push(marker);
        }
    }

    /// Total events across all PEs.
    pub fn len(&self) -> usize {
        self.streams.iter().map(Vec::len).sum()
    }

    /// Whether every stream is empty.
    pub fn is_empty(&self) -> bool {
        self.streams.iter().all(Vec::is_empty)
    }
}
