//! Lint findings: typed diagnostics, the aligned table, and JSON.

use crate::rules::Rule;
use std::collections::BTreeMap;
use t3d_perf::json::Value;

/// One finding (duplicates at the same site fold into `count`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintDiagnostic {
    /// The rule that fired.
    pub rule: Rule,
    /// PE whose op tripped the rule.
    pub pe: u32,
    /// PE whose memory is involved.
    pub target: u32,
    /// Offset in the target's memory.
    pub addr: u64,
    /// Index of the tripping event in `pe`'s stream.
    pub op_idx: usize,
    /// Occurrences folded into this row.
    pub count: u64,
    /// Human-oriented explanation.
    pub detail: String,
}

impl std::fmt::Display for LintDiagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: PE{} -> PE{} addr {:#x} at op {} ({})",
            self.rule, self.pe, self.target, self.addr, self.op_idx, self.detail
        )
    }
}

/// The analyzer's findings over one program.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LintReport {
    /// All diagnostics, hazards first, in (rule, pe, op) order.
    pub diagnostics: Vec<LintDiagnostic>,
    /// Events the analyzer processed.
    pub events_processed: u64,
}

impl LintReport {
    /// Whether the program is clean (no hazards *and* no advisories).
    pub fn is_empty(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Number of distinct diagnostic sites.
    pub fn len(&self) -> usize {
        self.diagnostics.len()
    }

    /// The hazard-rule findings only.
    pub fn hazards(&self) -> Vec<&LintDiagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.rule.is_hazard())
            .collect()
    }

    /// Whether no correctness hazard fired (advisories may have).
    pub fn is_hazard_free(&self) -> bool {
        self.hazards().is_empty()
    }

    /// The distinct rules that fired, in ID order.
    pub fn rules(&self) -> Vec<Rule> {
        let mut out: Vec<Rule> = self.diagnostics.iter().map(|d| d.rule).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Total occurrence count per rule ID, for pinning in tests.
    pub fn counts_by_rule(&self) -> BTreeMap<&'static str, u64> {
        let mut out = BTreeMap::new();
        for d in &self.diagnostics {
            *out.entry(d.rule.id()).or_insert(0) += d.count;
        }
        out
    }

    /// Renders the findings as an aligned text table (the same shape as
    /// `t3dsan`'s report).
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "t3d-lint: {} diagnostic site(s), {} event(s) analyzed\n",
            self.diagnostics.len(),
            self.events_processed
        ));
        if self.diagnostics.is_empty() {
            out.push_str("clean: no hazards, no advisories\n");
            return out;
        }
        out.push_str(&format!(
            "{:<9} {:<22} {:>3} {:>6} {:>12} {:>6} {:>5}  {}\n",
            "RULE", "NAME", "PE", "TARGET", "ADDR", "OP", "N", "DETAIL"
        ));
        for d in &self.diagnostics {
            out.push_str(&format!(
                "{:<9} {:<22} {:>3} {:>6} {:>#12x} {:>6} {:>5}  {}\n",
                d.rule.id(),
                d.rule.name(),
                d.pe,
                d.target,
                d.addr,
                d.op_idx,
                d.count,
                d.detail
            ));
        }
        out
    }

    /// Serializes the report as JSON (stable field order).
    pub fn to_json(&self) -> Value {
        let diags: Vec<Value> = self
            .diagnostics
            .iter()
            .map(|d| {
                Value::obj(vec![
                    ("rule", Value::Str(d.rule.id().to_string())),
                    ("name", Value::Str(d.rule.name().to_string())),
                    ("hazard", Value::Bool(d.rule.is_hazard())),
                    ("pe", Value::Int(d.pe as i64)),
                    ("target", Value::Int(d.target as i64)),
                    ("addr", Value::Int(d.addr as i64)),
                    ("op_idx", Value::Int(d.op_idx as i64)),
                    ("count", Value::Int(d.count as i64)),
                    ("detail", Value::Str(d.detail.clone())),
                ])
            })
            .collect();
        Value::obj(vec![
            ("tool", Value::Str("t3d-lint".to_string())),
            ("events_processed", Value::Int(self.events_processed as i64)),
            ("sites", Value::Int(self.diagnostics.len() as i64)),
            ("hazard_free", Value::Bool(self.is_hazard_free())),
            ("diagnostics", Value::Arr(diags)),
        ])
    }
}
