//! Quickstart: build a simulated T3D, run Split-C primitives, and see
//! what each one costs in machine cycles.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use splitc::{GlobalPtr, SplitC};
use t3d_machine::MachineConfig;

fn main() {
    // A 8-processor T3D (2 x 2 x 2 torus), 16 MB per node.
    let mut sc = SplitC::new(MachineConfig::t3d(8));
    println!(
        "machine: {} PEs, {:?} torus, {:.2} ns/cycle",
        sc.nodes(),
        sc.machine_ref().torus().config().dims,
        sc.machine_ref().cycle_ns(),
    );

    // Allocate a word on every node (the symmetric heap).
    let cell = sc.alloc(8, 8);

    // PE 0 pokes at its neighbours with each primitive, costing it out.
    sc.on(0, |ctx| {
        let gp = GlobalPtr::new(1, cell);

        let t0 = ctx.clock();
        ctx.write_u64(gp, 42);
        println!("blocking write to PE 1:  {:>5} cycles", ctx.clock() - t0);

        let t0 = ctx.clock();
        let v = ctx.read_u64(gp);
        println!(
            "blocking read from PE 1: {:>5} cycles (got {v})",
            ctx.clock() - t0
        );

        let t0b = ctx.clock();
        for i in 0..16u64 {
            ctx.put(GlobalPtr::new(1, cell + 8 + i * 8), i);
        }
        ctx.sync();
        println!(
            "16 pipelined puts:       {:>5} cycles ({} per put)",
            ctx.clock() - t0b,
            (ctx.clock() - t0b) / 16
        );
        let _ = t0;
    });

    // All nodes exchange a value around the ring with signaling stores.
    // These phases run through the sharded parallel driver: every PE
    // executes concurrently, bit-identical to the sequential order
    // (set T3D_PAR=0 to check).
    let ring = sc.alloc(8, 8);
    sc.par_phase(|ctx| {
        let right = (ctx.pe() + 1) % ctx.nodes();
        ctx.store_u64(GlobalPtr::new(right as u32, ring), 100 + ctx.pe() as u64);
    });
    sc.all_store_sync();
    sc.par_phase(|ctx| {
        let left = (ctx.pe() + ctx.nodes() - 1) % ctx.nodes();
        let got = ctx.read_u64(GlobalPtr::new(ctx.pe() as u32, ring));
        assert_eq!(got, 100 + left as u64);
    });
    println!("ring exchange via stores + allStoreSync: OK");

    // Bulk transfer crossover in action.
    let big = 64 * 1024u64;
    let src = sc.alloc(big, 8);
    let dst = sc.alloc(big, 8);
    sc.on(0, |ctx| {
        let t0 = ctx.clock();
        ctx.bulk_read(dst, GlobalPtr::new(2, src), 4096);
        let prefetch_cy = ctx.clock() - t0;
        let t0 = ctx.clock();
        ctx.bulk_read(dst, GlobalPtr::new(2, src), big);
        let blt_cy = ctx.clock() - t0;
        println!(
            "bulk_read 4 KB (prefetch queue): {prefetch_cy} cycles; \
             64 KB (BLT): {blt_cy} cycles"
        );
    });

    println!(
        "total virtual time on PE 0: {} cycles",
        sc.machine_ref().clock(0)
    );
}
