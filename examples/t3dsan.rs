//! t3dsan demo: replay the paper's documented hazards with the
//! split-phase analyzer collecting, and print the diagnostic table.
//!
//! ```sh
//! cargo run --example t3dsan
//! ```
//!
//! Every program here runs in `Collect` mode so all findings accumulate
//! into one report. Set `SplitcConfig::sanitize` to
//! `SanitizeMode::Panic` (or run any program with `T3D_SAN=2`) to abort
//! at the first hazard instead.

use splitc::{AnnexPolicy, GlobalPtr, SanitizeMode, SplitC, SplitcConfig};
use t3d_machine::MachineConfig;

fn collecting(nodes: u32, policy: AnnexPolicy) -> SplitC {
    let mut cfg = SplitcConfig::t3d();
    cfg.annex_policy = policy;
    cfg.sanitize = SanitizeMode::Collect;
    SplitC::with_config(MachineConfig::t3d(nodes), cfg)
}

fn main() {
    // --- Hazard 1: a put nobody sync()ed (Section 5). ---------------
    let mut sc = collecting(2, AnnexPolicy::SingleRegister);
    let cell = sc.alloc(8, 8);
    sc.on(0, |ctx| ctx.put(GlobalPtr::new(1, cell), 7));
    sc.on(1, |ctx| {
        let _ = ctx.read_u64(GlobalPtr::new(1, cell));
    });
    println!("== put without sync() ==");
    print!("{}", sc.san_report().unwrap().render_table());

    // --- Hazard 2: the UnsafeMulti synonym trap (Section 3.4). ------
    let mut sc = collecting(2, AnnexPolicy::UnsafeMulti);
    let cell = sc.alloc(8, 8);
    sc.on(0, |ctx| {
        ctx.store_u64(GlobalPtr::new(1, cell), 2);
        let _ = ctx.read_u64(GlobalPtr::new(1, cell));
    });
    println!("\n== store and read through annex synonyms ==");
    print!("{}", sc.san_report().unwrap().render_table());

    // --- Hazard 3: a stale cached line (Section 4.4). ---------------
    let mut sc = collecting(2, AnnexPolicy::SingleRegister);
    let cell = sc.alloc(8, 8);
    sc.on(0, |ctx| {
        let _ = ctx.read_u64_cached(GlobalPtr::new(1, cell));
    });
    sc.on(1, |ctx| ctx.write_u64(GlobalPtr::new(1, cell), 11));
    sc.on(0, |ctx| {
        let _ = ctx.read_u64_cached(GlobalPtr::new(1, cell));
    });
    println!("\n== cached read after the owner's update, no flush ==");
    print!("{}", sc.san_report().unwrap().render_table());

    // --- Hazard 4: unordered writes to one word (Section 4.5). ------
    let mut sc = collecting(4, AnnexPolicy::SingleRegister);
    let word = sc.alloc(8, 8);
    sc.on(1, |ctx| ctx.write_u64(GlobalPtr::new(0, word), 0xAA));
    sc.on(2, |ctx| ctx.write_u64(GlobalPtr::new(0, word), 0xBB00));
    println!("\n== two PEs write one word, no ordering ==");
    print!("{}", sc.san_report().unwrap().render_table());

    // --- Hazard 5: get spoiled by a store to its source (5.2). ------
    let mut sc = collecting(2, AnnexPolicy::SingleRegister);
    let src = sc.alloc(8, 8);
    let dst = sc.alloc(8, 8);
    sc.on(0, |ctx| {
        ctx.get(dst, GlobalPtr::new(1, src));
        ctx.put(GlobalPtr::new(1, src), 99);
        let _ = ctx.read_u64(GlobalPtr::new(0, dst));
        ctx.sync();
    });
    println!("\n== get + store to its source + early landing read ==");
    print!("{}", sc.san_report().unwrap().render_table());

    // --- And a disciplined program: nothing to report. --------------
    let mut sc = collecting(4, AnnexPolicy::SingleRegister);
    let ring = sc.alloc(4 * 8, 8);
    sc.par_phase(|ctx| {
        let right = ((ctx.pe() + 1) % ctx.nodes()) as u32;
        ctx.put(GlobalPtr::new(right, ring + ctx.pe() as u64 * 8), 1);
        ctx.sync();
    });
    sc.barrier();
    sc.par_phase(|ctx| {
        let left = (ctx.pe() + ctx.nodes() - 1) % ctx.nodes();
        let gp = GlobalPtr::new(ctx.pe() as u32, ring + left as u64 * 8);
        assert_eq!(ctx.read_u64(gp), 1);
    });
    println!("\n== ring exchange with sync + barrier ==");
    print!("{}", sc.san_report().unwrap().render_table());
}
