//! Distributed matrix transpose — the classic strided-access workload
//! the BLT's strided mode (Section 6.2) exists for.
//!
//! An N×N matrix of doubles is distributed by block-rows over the
//! processors. Each node assembles its block-row of the transpose by
//! fetching one column-block from every other node. Three strategies:
//!
//! * element-wise blocking reads (the naive port),
//! * per-element split-phase gets (pipelined),
//! * strided BLT gathers (one invocation per source block).
//!
//! ```sh
//! cargo run --release --example transpose
//! ```

use splitc::{GlobalPtr, SplitC};
use t3d_machine::MachineConfig;

const P: u32 = 4; // processors
const N: u64 = 64; // matrix dimension (rows = N, block rows of N/P)

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Strategy {
    Reads,
    Gets,
    StridedBlt,
}

/// Row-major offset of (r, c) within a block of `rows` x N.
fn off(base: u64, r: u64, c: u64) -> u64 {
    base + (r * N + c) * 8
}

fn run(strategy: Strategy) -> (f64, u64) {
    let rows = N / P as u64; // rows per node
    let mut sc = SplitC::new(MachineConfig::t3d(P));
    let a = sc.alloc(rows * N * 8, 8); // my block of A
    let t = sc.alloc(rows * N * 8, 8); // my block of A^T

    // A[r][c] = r * N + c, globally.
    for pe in 0..P as u64 {
        for r in 0..rows {
            for c in 0..N {
                let global_r = pe * rows + r;
                sc.machine()
                    .poke8(pe as usize, off(a, r, c), global_r * N + c);
            }
        }
    }

    sc.run_phase(|ctx| {
        let me = ctx.pe() as u64;
        // I own transpose rows me*rows .. (me+1)*rows, i.e. columns
        // me*rows.. of A. Fetch from every source block-row.
        for src in 0..ctx.nodes() as u64 {
            for tr in 0..rows {
                let a_col = me * rows + tr; // column of A = my transpose row
                match strategy {
                    Strategy::Reads => {
                        for sr in 0..rows {
                            let gp = GlobalPtr::new(src as u32, off(a, sr, a_col));
                            let v = ctx.read_u64(gp);
                            let pe = ctx.pe();
                            ctx.machine().st8(pe, off(t, tr, src * rows + sr), v);
                        }
                    }
                    Strategy::Gets => {
                        for sr in 0..rows {
                            let gp = GlobalPtr::new(src as u32, off(a, sr, a_col));
                            ctx.get(off(t, tr, src * rows + sr), gp);
                        }
                        ctx.sync();
                    }
                    Strategy::StridedBlt => {
                        // One strided gather: `rows` elements, one per
                        // source row, N*8 apart.
                        ctx.bulk_read_strided(
                            off(t, tr, src * rows),
                            GlobalPtr::new(src as u32, off(a, 0, a_col)),
                            rows,
                            8,
                            N * 8,
                        );
                    }
                }
            }
        }
    });
    sc.barrier();

    // Verify: T[r][c] must equal A[c][r] = c * N + r.
    let mut errors = 0u64;
    for pe in 0..P as u64 {
        for r in 0..rows {
            for c in 0..N {
                let global_r = pe * rows + r;
                let got = sc.machine().peek8(pe as usize, off(t, r, c));
                if got != c * N + global_r {
                    errors += 1;
                }
            }
        }
    }
    let us = sc.max_clock() as f64 / 150.0;
    (us, errors)
}

fn main() {
    println!("{N}x{N} matrix transpose over {P} PEs\n");
    for s in [Strategy::Reads, Strategy::Gets, Strategy::StridedBlt] {
        let (us, errors) = run(s);
        assert_eq!(errors, 0, "{s:?} produced a wrong transpose");
        println!("{s:?}: {us:>10.1} us, verified");
    }
    println!(
        "\n(pipelined gets beat blocking reads; the strided BLT pays its\n\
         180 us invocation per block and per-element page misses, the\n\
         trade-off Section 6 quantifies)"
    );
}
