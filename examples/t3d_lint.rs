//! t3d-lint demo: record a deliberately sloppy Split-C program and
//! lint its op streams.
//!
//! ```sh
//! cargo run --example t3d_lint
//! ```
//!
//! The program trips three rules on purpose:
//!
//! * **T3D-H001** — PE0 reads its get's landing word before `sync()`;
//! * **T3D-H004** — PE0 and PE1 put the same word on PE2 in one phase,
//!   so the final bytes depend on arrival order;
//! * **T3D-P001** — PE2 walks a remote array with blocking element
//!   reads instead of pipelined gets or one bulk transfer (the paper's
//!   EM3D `Simple` anti-pattern).
//!
//! The same pipeline is what `t3d-lint em3d` runs against the real
//! EM3D versions: enable recording, run, lint the recorded streams.

use splitc::{GlobalPtr, SplitC, SplitcConfig};
use t3d_lint::{lint, LintProgram, Rule};
use t3d_machine::MachineConfig;

fn main() {
    let mcfg = MachineConfig::t3d(4);
    let scfg = SplitcConfig::t3d();
    let mut sc = SplitC::new(MachineConfig::t3d(4));
    sc.record_ops(true);

    let land = sc.alloc(8, 8);
    let cell = sc.alloc(8, 8);
    let word = sc.alloc(8, 8);
    let buf = sc.alloc(16 * 8, 8);

    sc.run_phase(|ctx| match ctx.pe() {
        0 => {
            // Split-phase get... and an immediate read of the landing
            // word the get has not filled yet (T3D-H001).
            ctx.get(land, GlobalPtr::new(1, cell));
            let _ = ctx.read_u64(GlobalPtr::new(0, land));
            // One of two unordered puts to PE2's word (T3D-H004).
            ctx.put(GlobalPtr::new(2, word), 0xAAAA);
            ctx.sync();
        }
        1 => {
            // The other unordered put to the same word.
            ctx.put(GlobalPtr::new(2, word), 0xBBBB);
            ctx.sync();
        }
        2 => {
            // Element loop over a remote array: 16 blocking round
            // trips where one bulk_read would do (T3D-P001).
            let mut acc = 0u64;
            for i in 0..16u64 {
                acc = acc.wrapping_add(ctx.read_u64(GlobalPtr::new(3, buf + 8 * i)));
            }
            assert_eq!(acc, 0, "fresh memory reads zero");
        }
        _ => {}
    });
    sc.barrier();

    let report = lint(&LintProgram::from_recorded(sc.take_op_log()), &mcfg, &scfg);
    print!("{}", report.render_table());

    // The demo is also a regression check: exactly these three rules.
    assert_eq!(
        report.rules(),
        vec![
            Rule::H001ReadBeforeGetSync,
            Rule::H004ConflictingPuts,
            Rule::P001ElementLoopTransfer,
        ],
        "demo must trip exactly H001, H004 and P001"
    );
    println!("\ndemo tripped the three intended rules; JSON:");
    println!("{}", report.to_json().render_pretty());
}
