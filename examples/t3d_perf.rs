//! Profiling EM3D with the cycle-attribution profiler.
//!
//! Runs the naive (Simple) and most-optimized (Bulk) EM3D versions
//! under `t3d-perf` and prints where each one's cycles went. The
//! attribution tells the paper's Figure 9 story from the inside:
//! Simple spends most of its time in remote-access classes (shell
//! launches, network hops, remote DRAM), and Bulk collapses that
//! remote share by batching ghost transfers.
//!
//! Run with `cargo run --example t3d_perf`.

use em3d::{run_version_profiled, Em3dParams, Version};
use t3d_machine::PhaseDriver;

fn main() {
    let driver = PhaseDriver::from_env();
    let params = Em3dParams::tiny(40.0);

    let (simple_r, simple) = run_version_profiled(driver, 4, params, Version::Simple);
    let (bulk_r, bulk) = run_version_profiled(driver, 4, params, Version::Bulk);

    println!("=== EM3D Simple (blocking read per edge) ===");
    print!("{}", simple.render());
    println!();
    println!("=== EM3D Bulk (gather + one bulk transfer per source) ===");
    print!("{}", bulk.render());
    println!();
    println!(
        "us/edge: Simple {:.3} vs Bulk {:.3} ({:.1}x)",
        simple_r.us_per_edge,
        bulk_r.us_per_edge,
        simple_r.us_per_edge / bulk_r.us_per_edge
    );
    println!(
        "remote share: Simple {:.1}% vs Bulk {:.1}%",
        simple.remote_share() * 100.0,
        bulk.remote_share() * 100.0
    );

    // Self-check: the attribution must reproduce the paper's story —
    // remote classes dominate the naive version and shrink under Bulk.
    assert!(
        simple.remote_share() > 0.3,
        "Simple at 40% remote edges is communication-bound: {:.2}",
        simple.remote_share()
    );
    assert!(
        bulk.remote_share() < simple.remote_share() * 0.6,
        "Bulk batches the ghost fill: {:.2} vs {:.2}",
        bulk.remote_share(),
        simple.remote_share()
    );
    assert!(bulk_r.us_per_edge < simple_r.us_per_edge);
    println!("OK: remote-access attribution shrinks from Simple to Bulk");
}
