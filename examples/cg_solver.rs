//! Distributed conjugate gradient on the simulated T3D: a full numeric
//! solver built from the Split-C runtime — halo exchange with signaling
//! stores, global dot products with all-reduce collectives, local
//! compute through the simulated memory system.
//!
//! Solves the 1-D Poisson problem `A x = b` with the tridiagonal
//! Laplacian (2 on the diagonal, −1 off), block-row distributed.
//!
//! ```sh
//! cargo run --release --example cg_solver
//! ```

use splitc::{GlobalPtr, SplitC};
use t3d_machine::MachineConfig;

const P: u32 = 8;
const LOCAL_N: u64 = 128; // rows per node
const N: u64 = P as u64 * LOCAL_N;
const MAX_ITERS: usize = 600;
const TOL: f64 = 1e-10;

struct Vecs {
    x: u64,
    r: u64,
    p: u64, // with 2 halo cells: [halo_lo][LOCAL_N cells][halo_hi]
    ap: u64,
    scalar: u64,
    scratch: u64,
}

fn f(sc: &mut SplitC, pe: usize, off: u64) -> f64 {
    f64::from_bits(sc.machine().peek8(pe, off))
}

/// Exchanges p's boundary cells into the neighbours' halo slots.
fn halo_exchange(sc: &mut SplitC, v: &Vecs) {
    let p_cells = v.p + 8; // first interior cell
    sc.run_phase(|ctx| {
        let pe = ctx.pe();
        if pe > 0 {
            let first = ctx.machine().ld8(pe, p_cells);
            ctx.store_u64(
                GlobalPtr::new(pe as u32 - 1, v.p + (LOCAL_N + 1) * 8),
                first,
            );
        }
        if pe + 1 < ctx.nodes() {
            let last = ctx.machine().ld8(pe, p_cells + (LOCAL_N - 1) * 8);
            ctx.store_u64(GlobalPtr::new(pe as u32 + 1, v.p), last);
        }
    });
    sc.all_store_sync();
}

/// ap = A * p (tridiagonal Laplacian), using the freshly exchanged halo.
fn matvec(sc: &mut SplitC, v: &Vecs) {
    sc.run_phase(|ctx| {
        let pe = ctx.pe();
        let first_global = pe as u64 * LOCAL_N;
        for i in 0..LOCAL_N {
            let here = f64::from_bits(ctx.machine().ld8(pe, v.p + (i + 1) * 8));
            let lo = if first_global + i == 0 {
                0.0
            } else {
                f64::from_bits(ctx.machine().ld8(pe, v.p + i * 8))
            };
            let hi = if first_global + i == N - 1 {
                0.0
            } else {
                f64::from_bits(ctx.machine().ld8(pe, v.p + (i + 2) * 8))
            };
            let val = 2.0 * here - lo - hi;
            ctx.machine().st8(pe, v.ap + i * 8, val.to_bits());
            ctx.advance(20); // two FP adds + multiply + loop
        }
    });
    sc.barrier();
}

/// Global dot product of two local arrays via all-reduce.
fn dot(sc: &mut SplitC, v: &Vecs, a_off: u64, a_stride_halo: bool, b_off: u64) -> f64 {
    sc.run_phase(|ctx| {
        let pe = ctx.pe();
        let mut acc = 0.0;
        for i in 0..LOCAL_N {
            let a_idx = if a_stride_halo { (i + 1) * 8 } else { i * 8 };
            let a = f64::from_bits(ctx.machine().ld8(pe, a_off + a_idx));
            let b = f64::from_bits(ctx.machine().ld8(pe, b_off + i * 8));
            acc += a * b;
            ctx.advance(16);
        }
        ctx.machine().st8(pe, v.scalar, acc.to_bits());
        let pe2 = ctx.pe();
        ctx.machine().memory_barrier(pe2);
    });
    let bits = sc.all_reduce_u64(v.scalar, v.scratch, |a, b| {
        (f64::from_bits(a) + f64::from_bits(b)).to_bits()
    });
    f64::from_bits(bits)
}

fn main() {
    let mut sc = SplitC::new(MachineConfig::t3d(P));
    let v = Vecs {
        x: sc.alloc(LOCAL_N * 8, 8),
        r: sc.alloc(LOCAL_N * 8, 8),
        p: sc.alloc((LOCAL_N + 2) * 8, 8),
        ap: sc.alloc(LOCAL_N * 8, 8),
        scalar: sc.alloc(8, 8),
        scratch: sc.alloc(8, 8),
    };

    // b = 1 everywhere; x0 = 0; r = b; p = r.
    for pe in 0..P as usize {
        for i in 0..LOCAL_N {
            sc.machine().poke8(pe, v.x + i * 8, 0f64.to_bits());
            sc.machine().poke8(pe, v.r + i * 8, 1f64.to_bits());
            sc.machine().poke8(pe, v.p + (i + 1) * 8, 1f64.to_bits());
        }
        sc.machine().poke8(pe, v.p, 0f64.to_bits());
        sc.machine()
            .poke8(pe, v.p + (LOCAL_N + 1) * 8, 0f64.to_bits());
    }

    let mut rr = dot(&mut sc, &v, v.r, false, v.r);
    let mut iters = 0;
    while rr.sqrt() > TOL && iters < MAX_ITERS {
        halo_exchange(&mut sc, &v);
        matvec(&mut sc, &v);
        let pap = dot(&mut sc, &v, v.p, true, v.ap);
        let alpha = rr / pap;
        sc.run_phase(|ctx| {
            let pe = ctx.pe();
            for i in 0..LOCAL_N {
                let x = f64::from_bits(ctx.machine().ld8(pe, v.x + i * 8));
                let pi = f64::from_bits(ctx.machine().ld8(pe, v.p + (i + 1) * 8));
                let r = f64::from_bits(ctx.machine().ld8(pe, v.r + i * 8));
                let ap = f64::from_bits(ctx.machine().ld8(pe, v.ap + i * 8));
                ctx.machine()
                    .st8(pe, v.x + i * 8, (x + alpha * pi).to_bits());
                ctx.machine()
                    .st8(pe, v.r + i * 8, (r - alpha * ap).to_bits());
                ctx.advance(24);
            }
        });
        sc.barrier();
        let rr_new = dot(&mut sc, &v, v.r, false, v.r);
        let beta = rr_new / rr;
        rr = rr_new;
        sc.run_phase(|ctx| {
            let pe = ctx.pe();
            for i in 0..LOCAL_N {
                let r = f64::from_bits(ctx.machine().ld8(pe, v.r + i * 8));
                let pi = f64::from_bits(ctx.machine().ld8(pe, v.p + (i + 1) * 8));
                ctx.machine()
                    .st8(pe, v.p + (i + 1) * 8, (r + beta * pi).to_bits());
                ctx.advance(16);
            }
        });
        sc.barrier();
        iters += 1;
    }

    // Verify against the analytic solution of the discrete Poisson
    // problem with b=1: x_i = (i+1)(N-i)/2.
    let mut max_err = 0.0f64;
    for pe in 0..P as usize {
        for i in 0..LOCAL_N {
            let gi = pe as u64 * LOCAL_N + i;
            let expect = (gi as f64 + 1.0) * (N as f64 - gi as f64) / 2.0;
            let got = f(&mut sc, pe, v.x + i * 8);
            max_err = max_err.max((got - expect).abs() / expect);
        }
    }
    let ms = sc.max_clock() as f64 / 150.0e3;
    println!(
        "CG on {N}-point Poisson over {P} PEs: {iters} iterations, \
         residual {:.2e}, max rel. error {max_err:.2e}, {ms:.2} ms virtual time",
        rr.sqrt()
    );
    assert!(max_err < 1e-6, "CG must converge to the analytic solution");
}
