//! Distributed conjugate gradient on the simulated T3D: a full numeric
//! solver built from the Split-C runtime — halo exchange with signaling
//! stores, global dot products with all-reduce collectives, local
//! compute through the simulated memory system.
//!
//! Solves the 1-D Poisson problem `A x = b` with the tridiagonal
//! Laplacian (2 on the diagonal, −1 off), block-row distributed. The
//! solver lives in `t3d_sched::kernels::run_cg` (it is also a job
//! payload for the `t3d-sched` gang scheduler) and checks its converged
//! solution against a direct host solve (Thomas algorithm) on every
//! run; this example is a thin wrapper.
//!
//! ```sh
//! cargo run --release --example cg_solver
//! ```

use t3d_sched::kernels::{run_cg, ExecEnv};

const P: u32 = 8;
const LOCAL_N: u64 = 128; // rows per node
const SEED: u64 = 0xC6;

fn main() {
    let out = run_cg(ExecEnv::from_env(), P, LOCAL_N, SEED);
    println!(
        "CG on {}-point Poisson over {P} PEs: {} iterations, \
         max rel. error {:.2e}, {:.2} ms virtual time",
        u64::from(P) * LOCAL_N,
        out.iters,
        out.max_rel_err,
        out.ms
    );
    assert!(
        out.max_rel_err < 1e-6,
        "CG must converge to the direct solution"
    );
}
