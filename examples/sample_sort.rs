//! Distributed sample sort — the classic Split-C application, exercising
//! the whole runtime: signaling stores for control, bulk puts for the
//! all-to-all redistribution, barriers between phases.
//!
//! 1. Each PE sorts its local keys.
//! 2. Regular samples go to PE 0, which picks P−1 splitters and
//!    broadcasts them with stores.
//! 3. Counts are exchanged, offsets computed, and every PE bulk-puts its
//!    partitions to their destination PEs.
//! 4. Each PE sorts its received keys; the result is globally sorted.
//!
//! ```sh
//! cargo run --release --example sample_sort
//! ```

use splitc::{GlobalPtr, SplitC};
use t3d_machine::MachineConfig;
use t3d_prng::Rng;

const P: u32 = 8;
const KEYS_PER_PE: u64 = 512;
const OVERSAMPLE: u64 = 8;

/// Cycles charged for a host-side comparison sort of n keys (the local
/// compute the simulator does not execute instruction by instruction).
fn sort_cost(n: u64) -> u64 {
    // ~12 cycles per comparison, n log2 n comparisons.
    12 * n * (64 - n.leading_zeros() as u64)
}

fn read_keys(sc: &mut SplitC, pe: usize, off: u64, n: u64) -> Vec<u64> {
    (0..n)
        .map(|i| sc.machine().peek8(pe, off + i * 8))
        .collect()
}

fn main() {
    let mut sc = SplitC::new(MachineConfig::t3d(P));
    let keys = sc.alloc(KEYS_PER_PE * 8, 8);
    // Receive region: worst-case skew margin.
    let recv_cap = KEYS_PER_PE * 4;
    let recv = sc.alloc(recv_cap * 8, 8);
    let samples = sc.alloc(P as u64 * OVERSAMPLE * 8, 8); // at PE 0
    let splitters = sc.alloc(P as u64 * 8, 8); // broadcast to all
    let counts = sc.alloc(P as u64 * P as u64 * 8, 8); // [src][dst] at PE 0

    // Generate keys.
    for pe in 0..P as usize {
        let mut rng = Rng::seed_from_u64(99 + pe as u64);
        for i in 0..KEYS_PER_PE {
            sc.machine()
                .poke8(pe, keys + i * 8, rng.gen_range(0..1_000_000));
        }
    }

    // Phase 1: local sort + regular sampling to PE 0.
    sc.run_phase(|ctx| {
        let pe = ctx.pe();
        let mut local: Vec<u64> = (0..KEYS_PER_PE)
            .map(|i| ctx.machine().ld8(pe, keys + i * 8))
            .collect();
        local.sort_unstable();
        ctx.advance(sort_cost(KEYS_PER_PE));
        for (i, k) in local.iter().enumerate() {
            ctx.machine().st8(pe, keys + i as u64 * 8, *k);
        }
        // Regular samples.
        for s in 0..OVERSAMPLE {
            let idx = s * KEYS_PER_PE / OVERSAMPLE;
            let slot = pe as u64 * OVERSAMPLE + s;
            ctx.store_u64(GlobalPtr::new(0, samples + slot * 8), local[idx as usize]);
        }
    });
    sc.all_store_sync();

    // Phase 2: PE 0 picks splitters, broadcasts.
    sc.on(0, |ctx| {
        let n = P as u64 * OVERSAMPLE;
        let mut all: Vec<u64> = (0..n)
            .map(|i| ctx.machine().ld8(0, samples + i * 8))
            .collect();
        all.sort_unstable();
        ctx.advance(sort_cost(n));
        for d in 1..P as u64 {
            let splitter = all[(d * n / P as u64) as usize];
            for target in 0..P {
                ctx.store_u64(GlobalPtr::new(target, splitters + d * 8), splitter);
            }
        }
    });
    sc.all_store_sync();

    // Phase 3: partition, publish counts, then all-to-all bulk puts.
    sc.run_phase(|ctx| {
        let pe = ctx.pe();
        let splits: Vec<u64> = (1..P as u64)
            .map(|d| ctx.machine().ld8(pe, splitters + d * 8))
            .collect();
        let mut c = vec![0u64; P as usize];
        for i in 0..KEYS_PER_PE {
            let k = ctx.machine().ld8(pe, keys + i * 8);
            let dst = splits.partition_point(|&s| s <= k);
            c[dst] += 1;
            ctx.advance(6);
        }
        for (dst, n) in c.iter().enumerate() {
            let slot = pe as u64 * P as u64 + dst as u64;
            ctx.store_u64(GlobalPtr::new(0, counts + slot * 8), *n);
        }
    });
    sc.all_store_sync();
    // PE 0 computes per-destination receive offsets and broadcasts them
    // back as (src, dst) start slots.
    let offsets = sc.alloc(P as u64 * P as u64 * 8, 8);
    sc.on(0, |ctx| {
        for dst in 0..P as u64 {
            let mut cursor = 0u64;
            for src in 0..P as u64 {
                let n = ctx.machine().ld8(0, counts + (src * P as u64 + dst) * 8);
                for target in 0..P {
                    ctx.store_u64(
                        GlobalPtr::new(target, offsets + (src * P as u64 + dst) * 8),
                        cursor,
                    );
                }
                cursor += n;
                assert!(cursor <= recv_cap, "receive region overflow");
            }
        }
    });
    sc.all_store_sync();

    sc.run_phase(|ctx| {
        let pe = ctx.pe();
        let splits: Vec<u64> = (1..P as u64)
            .map(|d| ctx.machine().ld8(pe, splitters + d * 8))
            .collect();
        // Keys are sorted, so each destination's partition is one
        // contiguous run: one bulk_put per destination.
        let mut start = 0u64;
        for dst in 0..P as u64 {
            let mut end = start;
            while end < KEYS_PER_PE {
                let k = ctx.machine().ld8(pe, keys + end * 8);
                if splits.partition_point(|&s| s <= k) as u64 != dst {
                    break;
                }
                end += 1;
            }
            if end > start {
                let slot = ctx
                    .machine()
                    .ld8(pe, offsets + (pe as u64 * P as u64 + dst) * 8);
                ctx.bulk_put(
                    GlobalPtr::new(dst as u32, recv + slot * 8),
                    keys + start * 8,
                    (end - start) * 8,
                );
            }
            start = end;
        }
        ctx.sync();
    });
    sc.barrier();

    // Phase 4: final local sorts + verification.
    let mut boundaries = Vec::new();
    let mut total = Vec::new();
    for pe in 0..P as usize {
        // How many keys landed here: recomputed from the counts matrix.
        let mut n = 0u64;
        for src in 0..P as u64 {
            n += sc
                .machine()
                .peek8(0, counts + (src * P as u64 + pe as u64) * 8);
        }
        let mut mine = read_keys(&mut sc, pe, recv, n);
        mine.sort_unstable();
        sc.machine().advance(pe, sort_cost(n.max(1)));
        if let (Some(first), Some(last)) = (mine.first(), mine.last()) {
            boundaries.push((*first, *last));
        }
        total.extend(mine);
    }
    // Global order: each PE's range sits below the next PE's.
    for w in boundaries.windows(2) {
        assert!(w[0].1 <= w[1].0, "inter-PE order violated: {w:?}");
    }
    // Permutation check: the multiset of keys is preserved.
    let mut expected: Vec<u64> = (0..P as usize)
        .flat_map(|pe| {
            let mut rng = Rng::seed_from_u64(99 + pe as u64);
            (0..KEYS_PER_PE).map(move |_| rng.gen_range(0..1_000_000))
        })
        .collect();
    expected.sort_unstable();
    total.sort_unstable();
    assert_eq!(total, expected, "sample sort must be a sorting permutation");

    let us = sc.max_clock() as f64 / 150.0;
    println!(
        "sample sort: {} keys over {P} PEs in {us:.0} us (verified globally sorted)",
        P as u64 * KEYS_PER_PE
    );
}
