//! Distributed sample sort — the classic Split-C application, exercising
//! the whole runtime: signaling stores for control, bulk puts for the
//! all-to-all redistribution, barriers between phases.
//!
//! 1. Each PE sorts its local keys.
//! 2. Regular samples go to PE 0, which picks P−1 splitters and
//!    broadcasts them with stores.
//! 3. Counts are exchanged, offsets computed, and every PE bulk-puts its
//!    partitions to their destination PEs.
//! 4. Each PE sorts its received keys; the result is globally sorted.
//!
//! The sort itself lives in `t3d_sched::kernels::run_sample_sort` (it is
//! also a job payload for the `t3d-sched` gang scheduler) and verifies
//! on every run that its output is a globally sorted permutation of the
//! input; this example is a thin wrapper.
//!
//! ```sh
//! cargo run --release --example sample_sort
//! ```

use t3d_sched::kernels::{run_sample_sort, ExecEnv};

const P: u32 = 8;
const KEYS_PER_PE: u64 = 512;
const SEED: u64 = 99;

fn main() {
    let out = run_sample_sort(ExecEnv::from_env(), P, KEYS_PER_PE, SEED);
    assert_eq!(out.keys, u64::from(P) * KEYS_PER_PE);
    println!(
        "sample sort: {} keys over {P} PEs in {:.0} us (verified globally sorted)",
        out.keys, out.us
    );
}
