//! A global histogram built with the shell's atomic primitives.
//!
//! Every processor classifies a local stream of samples into a histogram
//! spread cyclically over the machine. Remote bins cannot be updated
//! with plain read-modify-write (the Section 4.5 clobber problem!), so
//! two correct strategies are compared:
//!
//! * AM-equivalent `add` deposits applied at the owning node
//!   (Section 7.4's poll-based Active Messages), and
//! * per-node private histograms merged with signaling stores.
//!
//! For flavour, the broken read-modify-write variant is also run to show
//! how many increments it loses.
//!
//! ```sh
//! cargo run --example histogram
//! ```

use splitc::runtime::AM_ADD_U64;
use splitc::{GlobalPtr, SplitC, SplitcConfig, SpreadArray};
use t3d_machine::MachineConfig;
use t3d_prng::Rng;

const NODES: u32 = 8;
const BINS: u64 = 64;
const SAMPLES_PER_PE: usize = 400;

fn samples(pe: usize) -> Vec<u64> {
    let mut rng = Rng::seed_from_u64(42 + pe as u64);
    (0..SAMPLES_PER_PE)
        .map(|_| rng.gen_range(0..BINS))
        .collect()
}

fn expected() -> Vec<u64> {
    let mut h = vec![0u64; BINS as usize];
    for pe in 0..NODES as usize {
        for s in samples(pe) {
            h[s as usize] += 1;
        }
    }
    h
}

fn read_bins(sc: &mut SplitC, bins: &SpreadArray) -> Vec<u64> {
    (0..BINS)
        .map(|b| {
            let gp = bins.gptr(b);
            sc.machine().peek8(gp.pe() as usize, gp.addr())
        })
        .collect()
}

fn main() {
    let exp = expected();

    // Strategy 1: AM-equivalent atomic adds at the owner. Each node
    // receives ~350 deposits per phase, so enlarge the default 256-slot
    // queue (the runtime panics on overflow rather than losing updates).
    let mut amq_cfg = SplitcConfig::t3d();
    amq_cfg.am_slots = 1024;
    let mut sc = SplitC::with_config(MachineConfig::t3d(NODES), amq_cfg);
    let base = sc.alloc(BINS * 8, 8);
    let bins = SpreadArray::new(base, 8, BINS, NODES);
    sc.run_phase(|ctx| {
        let pe = ctx.pe();
        for s in samples(pe) {
            let gp = bins.gptr(s);
            if gp.pe() as usize == pe {
                let v = ctx.machine().ld8(pe, gp.addr()) + 1;
                ctx.machine().st8(pe, gp.addr(), v);
            } else {
                ctx.am_deposit(gp.pe() as usize, AM_ADD_U64, [gp.addr(), 1, 0, 0]);
            }
        }
    });
    sc.barrier();
    let am = read_bins(&mut sc, &bins);
    let am_us = sc.max_clock() as f64 / 150.0;
    assert_eq!(am, exp, "AM-based histogram must be exact");
    println!("AM-equivalent adds:     exact, {am_us:>8.1} us");

    // Strategy 2: private histograms + store-based merge.
    let mut sc = SplitC::new(MachineConfig::t3d(NODES));
    let base = sc.alloc(BINS * 8, 8);
    let bins = SpreadArray::new(base, 8, BINS, NODES);
    let private = sc.alloc(BINS * 8, 8);
    sc.run_phase(|ctx| {
        let pe = ctx.pe();
        for s in samples(pe) {
            let off = private + s * 8;
            let v = ctx.machine().ld8(pe, off) + 1;
            ctx.machine().st8(pe, off, v);
            ctx.advance(2);
        }
    });
    sc.barrier();
    // Merge: bin b's owner pulls every node's private count.
    sc.run_phase(|ctx| {
        let pe = ctx.pe();
        for b in bins.owned_by(pe as u32) {
            let mut total = 0u64;
            for src in 0..ctx.nodes() {
                total += if src == pe {
                    ctx.machine().ld8(pe, private + b * 8)
                } else {
                    ctx.read_u64(GlobalPtr::new(src as u32, private + b * 8))
                };
            }
            let gp = bins.gptr(b);
            ctx.machine().st8(pe, gp.addr(), total);
        }
    });
    sc.barrier();
    let merged = read_bins(&mut sc, &bins);
    let merge_us = sc.max_clock() as f64 / 150.0;
    assert_eq!(merged, exp, "merge-based histogram must be exact");
    println!("private + merge:        exact, {merge_us:>8.1} us");

    // Strategy 3 (broken): remote read-modify-write. Increments race.
    let mut sc = SplitC::new(MachineConfig::t3d(NODES));
    let base = sc.alloc(BINS * 8, 8);
    let bins = SpreadArray::new(base, 8, BINS, NODES);
    // Interleave: everyone reads, then everyone writes — the same-phase
    // interleaving a real machine can produce.
    let mut staged: Vec<Vec<(u64, u64)>> = Vec::new();
    for pe in 0..NODES as usize {
        let mut mine = Vec::new();
        sc.on(pe, |ctx| {
            for s in samples(pe) {
                let gp = bins.gptr(s);
                let v = ctx.read_u64(gp) + 1;
                mine.push((s, v));
            }
        });
        staged.push(mine);
    }
    for (pe, writes) in staged.into_iter().enumerate() {
        sc.on(pe, |ctx| {
            for (s, v) in writes {
                ctx.write_u64(bins.gptr(s), v);
            }
        });
    }
    sc.barrier();
    let racy = read_bins(&mut sc, &bins);
    let lost: u64 = exp
        .iter()
        .zip(&racy)
        .map(|(e, r)| e.saturating_sub(*r))
        .sum();
    println!(
        "naive read-modify-write: LOST {lost} of {} increments",
        NODES as usize * SAMPLES_PER_PE
    );
    assert!(
        lost > 0,
        "the race must actually lose updates in this schedule"
    );
}
