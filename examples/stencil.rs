//! A 1-D Jacobi stencil with ghost-cell exchange — the bulk-synchronous
//! pattern Section 7 of the paper motivates.
//!
//! Each processor owns a block of a global 1-D array. Every step it
//! exchanges boundary cells with its neighbours and relaxes its block.
//! Three communication strategies are compared:
//!
//! * blocking writes (the naive port),
//! * signaling stores + `allStoreSync` (the paper's recommendation),
//! * bulk transfer of the whole halo.
//!
//! Phases run through the sharded parallel driver (`SplitC::par_phase`);
//! set `T3D_PAR=0` to force the sequential oracle — the output is
//! bit-identical either way.
//!
//! ```sh
//! cargo run --example stencil
//! ```

use splitc::{GlobalPtr, SplitC};
use t3d_machine::MachineConfig;

const NODES: u32 = 8;
const BLOCK: u64 = 512; // cells per processor
const STEPS: usize = 5;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Comm {
    BlockingWrite,
    Store,
    Bulk,
}

fn run(comm: Comm) -> (f64, f64) {
    let mut sc = SplitC::new(MachineConfig::t3d(NODES));
    // Block plus one ghost cell on each side.
    let cells = sc.alloc((BLOCK + 2) * 8, 8);

    // Initialize: a spike on PE 0.
    for p in 0..NODES as usize {
        for i in 0..BLOCK + 2 {
            sc.machine().poke8(p, cells + i * 8, 0f64.to_bits());
        }
    }
    sc.machine().poke8(0, cells + 8, 1000f64.to_bits());

    for _ in 0..STEPS {
        // Exchange: send my first/last interior cells to the
        // neighbours' ghost slots.
        sc.par_phase(|ctx| {
            let pe = ctx.pe();
            let left = (pe + NODES as usize - 1) % NODES as usize;
            let right = (pe + 1) % NODES as usize;
            let my_first = cells + 8;
            let my_last = cells + BLOCK * 8;
            let left_ghost_at_right = cells; // their [0] is my last
            let right_ghost_at_left = cells + (BLOCK + 1) * 8;
            match comm {
                Comm::BlockingWrite => {
                    let v = ctx.ops().ld8(pe, my_last);
                    ctx.write_u64(GlobalPtr::new(right as u32, left_ghost_at_right), v);
                    let v = ctx.ops().ld8(pe, my_first);
                    ctx.write_u64(GlobalPtr::new(left as u32, right_ghost_at_left), v);
                }
                Comm::Store => {
                    let v = ctx.ops().ld8(pe, my_last);
                    ctx.store_u64(GlobalPtr::new(right as u32, left_ghost_at_right), v);
                    let v = ctx.ops().ld8(pe, my_first);
                    ctx.store_u64(GlobalPtr::new(left as u32, right_ghost_at_left), v);
                }
                Comm::Bulk => {
                    ctx.bulk_put(
                        GlobalPtr::new(right as u32, left_ghost_at_right),
                        my_last,
                        8,
                    );
                    ctx.bulk_put(
                        GlobalPtr::new(left as u32, right_ghost_at_left),
                        my_first,
                        8,
                    );
                    ctx.sync();
                }
            }
        });
        match comm {
            Comm::Store => sc.all_store_sync(),
            _ => sc.barrier(),
        }

        // Relax: new[i] = (old[i-1] + old[i+1]) / 2, in place with a
        // rolling previous value.
        sc.par_phase(|ctx| {
            let pe = ctx.pe();
            let mut prev = f64::from_bits(ctx.ops().ld8(pe, cells));
            for i in 1..=BLOCK {
                let here = f64::from_bits(ctx.ops().ld8(pe, cells + i * 8));
                let next = f64::from_bits(ctx.ops().ld8(pe, cells + (i + 1) * 8));
                let new = 0.5 * (prev + next);
                prev = here;
                ctx.ops().st8(pe, cells + i * 8, new.to_bits());
                ctx.advance(8); // FP add + multiply
            }
        });
        sc.barrier();
    }

    // Conservation-ish check: the spike has spread but mass is finite.
    let mut total = 0.0;
    for p in 0..NODES as usize {
        for i in 1..=BLOCK {
            total += f64::from_bits(sc.machine().peek8(p, cells + i * 8));
        }
    }
    let us = sc.max_clock() as f64 * sc.machine_ref().cycle_ns() / 1000.0;
    (us, total)
}

fn main() {
    println!("1-D stencil, {NODES} PEs x {BLOCK} cells, {STEPS} steps\n");
    let mut reference = None;
    for comm in [Comm::BlockingWrite, Comm::Store, Comm::Bulk] {
        let (us, total) = run(comm);
        println!("{comm:?}: {us:>9.1} us total, field sum {total:.6}");
        match reference {
            None => reference = Some(total),
            Some(r) => assert!(
                (total - r).abs() < 1e-9,
                "all strategies must compute the same field"
            ),
        }
    }
    println!("\n(signaling stores avoid the per-write acknowledgement wait;");
    println!(" the paper's Section 7 recommendation)");
}
