//! A 1-D Jacobi stencil with ghost-cell exchange — the bulk-synchronous
//! pattern Section 7 of the paper motivates.
//!
//! The stencil itself lives in `t3d_sched::kernels::run_stencil` (it is
//! also a job payload for the `t3d-sched` gang scheduler); this example
//! runs it under all three halo strategies and checks they compute a
//! bit-identical field:
//!
//! * blocking writes (the naive port),
//! * signaling stores + `allStoreSync` (the paper's recommendation),
//! * bulk transfer of the whole halo.
//!
//! Phases run through the sharded parallel driver (`SplitC::par_phase`);
//! set `T3D_PAR=0` to force the sequential oracle — the output is
//! bit-identical either way.
//!
//! ```sh
//! cargo run --example stencil
//! ```

use t3d_sched::kernels::{run_stencil, ExecEnv, StencilComm};

const NODES: u32 = 8;
const BLOCK: u64 = 512; // cells per processor
const STEPS: usize = 5;
const SEED: u64 = 0x57E4;

fn main() {
    println!("1-D stencil, {NODES} PEs x {BLOCK} cells, {STEPS} steps\n");
    let env = ExecEnv::from_env();
    let mut reference = None;
    for comm in StencilComm::all() {
        let out = run_stencil(env, NODES, BLOCK, STEPS, SEED, comm);
        println!(
            "{comm:?}: {:>9.1} us total, field sum {:.6}",
            out.us, out.field_sum
        );
        match reference {
            None => reference = Some(out.run.result_fnv),
            Some(r) => assert_eq!(
                out.run.result_fnv, r,
                "all strategies must compute the same field"
            ),
        }
    }
    println!("\n(signaling stores avoid the per-write acknowledgement wait;");
    println!(" the paper's Section 7 recommendation)");
}
