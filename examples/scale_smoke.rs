//! Scale smoke check: a 256-PE EM3D instance, uncontended and
//! contended, reduced to one `ledger_fnv` line.
//!
//! ```sh
//! cargo run --release --example scale_smoke
//! ```
//!
//! The `scale-smoke` CI job runs this under the full
//! `T3D_PAR`×`T3D_EVENT` matrix and requires every combination to print
//! the *same* line: the phase driver and the time-advance engine must
//! be invisible in every clock, memory byte and ledger of a full-size
//! sub-machine, with the opt-in contention models both off and on.
//! (The contended arm pins its own timing: link queueing is
//! deterministic too, it just models a different machine.)

use em3d::{run_version_profiled_contended, run_version_profiled_engine, Em3dParams, Version};
use t3d_machine::{EngineMode, PhaseDriver};

/// FNV-1a over a stream of words — the same chaining idiom the
/// scheduler's `ledger_fnv` uses.
fn fnv_chain(words: &[u64]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

fn main() {
    let driver = PhaseDriver::from_env();
    let engine = EngineMode::from_env();
    let params = Em3dParams::tiny(30.0);
    let mut words = Vec::new();
    for contended in [false, true] {
        let (r, p) = if contended {
            run_version_profiled_contended(driver, engine, 256, params, Version::Bulk)
        } else {
            run_version_profiled_engine(driver, engine, 256, params, Version::Bulk)
        };
        words.extend([r.mem_fnv, r.clock_fnv, r.cycles, r.edges, p.total()]);
        println!(
            "em3d 256 PEs contended={contended}: {} cycles, mem_fnv {:#018x}",
            r.cycles, r.mem_fnv
        );
    }
    println!("ledger_fnv {:#018x}", fnv_chain(&words));
}
