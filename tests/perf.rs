//! Integration tests for the t3d-perf profiler: conservation of
//! attributed cycles, sequential/parallel bit-identity, and the
//! pure-observation guarantee (profiling never changes virtual time).

use em3d::{
    run_version_profiled, run_version_profiled_engine, run_version_with, Em3dParams, Version,
};
use t3d_machine::{EngineMode, Machine, MachineConfig, PerfMode, PerfReport, PhaseDriver};
use t3d_microbench::probes::attribution;

/// The conservation invariant: on every PE, the cycles attributed to
/// cost classes equal the virtual cycles that elapsed while collection
/// was on. No elapsed cycle may be unattributed or double-counted.
fn assert_conserves(name: &str, report: &PerfReport) {
    for pe in &report.pes {
        assert_eq!(
            pe.ledger.total(),
            pe.elapsed,
            "{name}: PE{} attributed {} of {} elapsed cycles",
            pe.pe,
            pe.ledger.total(),
            pe.elapsed
        );
    }
}

#[test]
fn every_scenario_conserves_cycles_under_seq() {
    for s in attribution::all() {
        for engine in [EngineMode::Cycle, EngineMode::Event] {
            assert_conserves(s.name, &(s.run)(PhaseDriver::Seq, engine).report);
        }
    }
}

#[test]
fn every_scenario_conserves_cycles_under_par() {
    for s in attribution::all() {
        for engine in [EngineMode::Cycle, EngineMode::Event] {
            assert_conserves(s.name, &(s.run)(PhaseDriver::Par(4), engine).report);
        }
    }
}

#[test]
fn scenario_reports_are_bit_identical_across_drivers() {
    for s in attribution::all() {
        let seq = (s.run)(PhaseDriver::Seq, EngineMode::Cycle);
        let par = (s.run)(PhaseDriver::Par(4), EngineMode::Cycle);
        // ScenarioRun equality covers the report AND the state checksum.
        assert_eq!(seq, par, "{}: Seq and Par(4) runs differ", s.name);
        assert_eq!(
            seq.report.to_json().render_pretty(),
            par.report.to_json().render_pretty(),
            "{}: rendered JSON differs across drivers",
            s.name
        );
    }
}

#[test]
fn scenario_ledgers_are_bit_identical_across_engines() {
    // The event engine's bit-identity contract, over the full
    // attribution corpus: per-PE CostClass ledgers, histograms and the
    // machine-state fingerprint must all match the cycle engine's, on
    // both phase drivers. ScenarioRun equality covers the whole report.
    for s in attribution::all() {
        for driver in [PhaseDriver::Seq, PhaseDriver::Par(4)] {
            let cycle = (s.run)(driver, EngineMode::Cycle);
            let event = (s.run)(driver, EngineMode::Event);
            assert_eq!(cycle, event, "{}: engines diverge under {driver:?}", s.name);
        }
    }
}

#[test]
fn em3d_attribution_is_bit_identical_across_engines() {
    // All seven EM3D versions under both engines: timing result and
    // attribution report must match exactly.
    let p = Em3dParams::tiny(30.0);
    for v in Version::all() {
        let (r_cy, perf_cy) =
            run_version_profiled_engine(PhaseDriver::Seq, EngineMode::Cycle, 4, p, v);
        let (r_ev, perf_ev) =
            run_version_profiled_engine(PhaseDriver::Seq, EngineMode::Event, 4, p, v);
        assert_eq!(r_cy, r_ev, "{}: results differ across engines", v.label());
        assert_eq!(
            perf_cy,
            perf_ev,
            "{}: attribution differs across engines",
            v.label()
        );
        assert_conserves(v.label(), &perf_ev);
    }
}

#[test]
fn em3d_attribution_is_bit_identical_across_drivers() {
    let p = Em3dParams::tiny(30.0);
    for v in [Version::Simple, Version::Bulk, Version::StoreSync] {
        let (r_seq, perf_seq) = run_version_profiled(PhaseDriver::Seq, 4, p, v);
        let (r_par, perf_par) = run_version_profiled(PhaseDriver::Par(4), 4, p, v);
        assert_eq!(r_seq, r_par, "{}: results differ", v.label());
        assert_eq!(perf_seq, perf_par, "{}: attribution differs", v.label());
        assert_conserves(v.label(), &perf_seq);
    }
}

#[test]
fn em3d_profiled_reports_cover_the_measured_region() {
    let p = Em3dParams::tiny(30.0);
    let (result, perf) = run_version_profiled(PhaseDriver::Seq, 4, p, Version::Put);
    // Elapsed per PE is bounded by the measured wall (max clock delta);
    // the report was rebased after warm-up, so totals are in that range.
    for pe in &perf.pes {
        assert!(
            pe.elapsed <= result.cycles,
            "PE{} elapsed {} exceeds measured window {}",
            pe.pe,
            pe.elapsed,
            result.cycles
        );
    }
    assert!(
        !perf.phases.is_empty(),
        "the profiled run marks comm/compute phases"
    );
    let labels: Vec<&str> = perf.phases.iter().map(|p| p.label.as_str()).collect();
    for want in ["comm.e", "compute.e", "comm.h", "compute.h"] {
        assert!(labels.contains(&want), "missing phase {want}: {labels:?}");
    }
}

#[test]
fn profiling_never_changes_virtual_time() {
    // The pure-observation guarantee: identical programs with profiling
    // off and on land on identical clocks and identical results.
    let p = Em3dParams::tiny(40.0);
    for v in [Version::Simple, Version::Get, Version::Bulk] {
        let plain = run_version_with(PhaseDriver::Seq, 4, p, v);
        let (profiled, _) = run_version_profiled(PhaseDriver::Seq, 4, p, v);
        assert_eq!(
            plain,
            profiled,
            "{}: profiling perturbed the run",
            v.label()
        );
    }
}

#[test]
fn perf_off_collects_nothing_and_costs_nothing() {
    let mut m = Machine::new(MachineConfig::t3d(2));
    // Explicit Off (the default unless T3D_PERF says otherwise).
    m.set_perf_mode(PerfMode::Off);
    m.st8(0, 0x100, 7);
    m.memory_barrier(0);
    let _ = m.ld8(0, 0x100);
    let report = m.perf();
    assert_eq!(report.total(), 0, "no attribution collected when off");
    assert!(report.registry.hists().next().is_none());
}

#[test]
fn timeline_mode_exports_a_chrome_trace() {
    let mut m = Machine::new(MachineConfig::t3d(2));
    m.set_perf_mode(PerfMode::Timeline);
    m.st8(0, 0x100, 7);
    m.memory_barrier(0);
    m.perf_begin_phase("work");
    let _ = m.ld8(0, 0x100);
    m.perf_end_phase();
    let trace = m.perf_chrome_trace();
    assert!(trace.contains("\"traceEvents\""));
    assert!(
        trace.contains("st.local"),
        "events carry op labels: {trace}"
    );
    assert!(trace.contains("\"work\""), "phase span exported");
}
