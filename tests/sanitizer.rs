//! t3dsan corpus: every hazard from `tests/hazards.rs` must be flagged
//! with its expected kind, and properly synchronized programs must stay
//! silent — under both the sequential and parallel phase drivers.

use splitc::{AnnexPolicy, DiagKind, GlobalLock, GlobalPtr, SanitizeMode, SplitC, SplitcConfig};
use std::panic::{catch_unwind, AssertUnwindSafe};
use t3d_machine::{Machine, MachineConfig, PhaseDriver, Tracer};
use t3d_shell::{AnnexEntry, FuncCode};

fn collect(nodes: u32) -> SplitC {
    let mut cfg = SplitcConfig::t3d();
    cfg.sanitize = SanitizeMode::Collect;
    SplitC::with_config(MachineConfig::t3d(nodes), cfg)
}

fn report(sc: &SplitC) -> splitc::Report {
    sc.san_report().expect("sanitizer is on")
}

// ---------------------------------------------------------------------
// Positive corpus: each documented hazard, with its expected kind.
// ---------------------------------------------------------------------

/// Section 5: a put nobody sync()ed, read by its target.
#[test]
fn unsynced_put_is_a_stale_store_read() {
    let mut sc = collect(2);
    let cell = sc.alloc(8, 8);
    sc.on(0, |ctx| ctx.put(GlobalPtr::new(1, cell), 7));
    sc.on(1, |ctx| {
        let _ = ctx.read_u64(GlobalPtr::new(1, cell));
    });
    let r = report(&sc);
    assert_eq!(r.kinds(), vec![DiagKind::StaleStoreRead]);
    assert!(r.diagnostics[0].detail.contains("sync()"), "{r:?}");
}

/// Section 7: a signaling store read before the target's storeSync.
#[test]
fn store_without_store_sync_is_flagged_and_store_sync_clears_it() {
    let mut sc = collect(2);
    let cell = sc.alloc(16, 8);
    sc.on(0, |ctx| {
        ctx.store_u64(GlobalPtr::new(1, cell), 1);
        ctx.machine().memory_barrier(0); // flush so arrival is logged
    });
    sc.on(1, |ctx| {
        let _ = ctx.read_u64(GlobalPtr::new(1, cell)); // too early
    });
    assert_eq!(report(&sc).kinds(), vec![DiagKind::StaleStoreRead]);

    // The disciplined version stays at one diagnostic site.
    sc.on(1, |ctx| {
        ctx.store_sync(8);
        let _ = ctx.read_u64(GlobalPtr::new(1, cell));
    });
    assert_eq!(report(&sc).len(), 1, "{}", report(&sc).render_table());
}

/// Section 4.4: a cached line surviving the owner's update.
#[test]
fn stale_cached_line_is_flagged_until_flushed() {
    let mut sc = collect(2);
    let cell = sc.alloc(8, 8);
    sc.on(0, |ctx| {
        let _ = ctx.read_u64_cached(GlobalPtr::new(1, cell));
    });
    sc.on(1, |ctx| ctx.write_u64(GlobalPtr::new(1, cell), 11));
    sc.on(0, |ctx| {
        let _ = ctx.read_u64_cached(GlobalPtr::new(1, cell)); // stale line
    });
    let r = report(&sc);
    assert_eq!(r.kinds(), vec![DiagKind::StaleStoreRead]);
    assert!(r.diagnostics[0].detail.contains("flush_remote_line"));

    // Flush, re-read: no new site.
    sc.on(0, |ctx| {
        ctx.flush_remote_line(GlobalPtr::new(1, cell));
        let _ = ctx.read_u64_cached(GlobalPtr::new(1, cell));
    });
    assert_eq!(report(&sc).len(), 1);
}

/// Section 4.5: two PEs read-modify-write one word with no ordering.
#[test]
fn unordered_writes_to_one_word_are_conflicting_puts() {
    let mut sc = collect(4);
    let word = sc.alloc(8, 8);
    sc.on(1, |ctx| ctx.write_u64(GlobalPtr::new(0, word), 0xAA));
    sc.on(2, |ctx| ctx.write_u64(GlobalPtr::new(0, word), 0xBB00));
    assert_eq!(report(&sc).kinds(), vec![DiagKind::ConflictingPuts]);
}

/// Section 4.5 (the repair): the same updates through the AM-based byte
/// write are ordered by the queue and stay silent.
#[test]
fn byte_write_repair_is_silent() {
    let mut sc = collect(4);
    let word = sc.alloc(8, 8);
    sc.on(1, |ctx| ctx.byte_write(GlobalPtr::new(0, word), 0xAA));
    sc.on(2, |ctx| ctx.byte_write(GlobalPtr::new(0, word + 1), 0xBB));
    sc.barrier();
    assert_eq!(sc.machine().peek8(0, word), 0xBBAA);
    assert!(report(&sc).is_empty(), "{}", report(&sc).render_table());
}

/// Section 5: reading a get's landing word before sync().
#[test]
fn landing_word_read_before_sync_is_flagged() {
    let mut sc = collect(2);
    let src = sc.alloc(8, 8);
    let dst = sc.alloc(8, 8);
    sc.on(0, |ctx| {
        ctx.get(dst, GlobalPtr::new(1, src));
        let _ = ctx.read_u64(GlobalPtr::new(0, dst)); // undefined until sync
        ctx.sync();
    });
    assert_eq!(report(&sc).kinds(), vec![DiagKind::ReadBeforeGetSync]);
}

/// Section 5.2: a get completed after a store clobbered its source — the
/// popped value predates the store.
#[test]
fn store_to_a_bound_gets_source_is_prefetch_order_misuse() {
    let mut sc = collect(2);
    let src = sc.alloc(8, 8);
    let dst = sc.alloc(8, 8);
    sc.on(0, |ctx| {
        ctx.get(dst, GlobalPtr::new(1, src));
        ctx.put(GlobalPtr::new(1, src), 99); // spoils the bound get
        ctx.sync();
    });
    assert!(report(&sc).kinds().contains(&DiagKind::PrefetchOrderMisuse));
}

/// Section 3.4: the UnsafeMulti synonym trap, via the runtime's own
/// round-robin register allocation.
#[test]
fn unsafe_multi_policy_trips_the_synonym_hazard() {
    let mut cfg = SplitcConfig::t3d();
    cfg.annex_policy = AnnexPolicy::UnsafeMulti;
    cfg.sanitize = SanitizeMode::Collect;
    let mut sc = SplitC::with_config(MachineConfig::t3d(2), cfg);
    let cell = sc.alloc(8, 8);
    sc.on(0, |ctx| {
        ctx.store_u64(GlobalPtr::new(1, cell), 2); // buffered via reg a
        let _ = ctx.read_u64(GlobalPtr::new(1, cell)); // read via reg b
    });
    assert!(report(&sc).kinds().contains(&DiagKind::AnnexSynonymHazard));
}

/// The same program under the hashed policy maps PE 1 to one register:
/// no synonym (the store is still un-synced, which is a separate,
/// correctly-reported staleness).
#[test]
fn hashed_policy_never_trips_the_synonym_hazard() {
    let mut cfg = SplitcConfig::t3d();
    cfg.annex_policy = AnnexPolicy::HashedMulti;
    cfg.sanitize = SanitizeMode::Collect;
    let mut sc = SplitC::with_config(MachineConfig::t3d(8), cfg);
    let cell = sc.alloc(64, 8);
    sc.on(0, |ctx| {
        for t in 1..8u32 {
            ctx.write_u64(GlobalPtr::new(t, cell), t as u64);
            let _ = ctx.read_u64(GlobalPtr::new(t, cell));
        }
    });
    assert!(report(&sc).is_empty(), "{}", report(&sc).render_table());
}

/// Sections 4.3/4.5 at the machine level: the trace scan catches the
/// status-bit poll with buffered writes, the raw synonym access, and a
/// buffered local store read remotely.
#[test]
fn trace_scan_flags_the_raw_machine_hazards() {
    let mut m = Machine::new(MachineConfig::t3d(2));
    m.enable_trace(Tracer::env_cap(1024));
    let annex = |pe: u32| AnnexEntry {
        pe,
        func: FuncCode::Uncached,
    };
    m.annex_set(0, 1, annex(1));
    m.annex_set(0, 2, annex(1));
    m.st8(1, 0x200, 99); // PE 1 buffers a local store
    m.st8(0, m.va(1, 0x100), 7); // PE 0 buffers a remote store via reg 1
    let _ = m.poll_status(0); // 4.3: poll without a fence
    let _ = m.ld8(0, m.va(2, 0x100)); // 3.4: read through the synonym
    let _ = m.ld8(0, m.va(1, 0x200)); // 4.5: sees PE 1's buffer bypass
    let r = t3dsan::trace_scan::scan_trace(&m);
    assert!(r.kinds().contains(&DiagKind::StaleStoreRead));
    assert!(r.kinds().contains(&DiagKind::AnnexSynonymHazard));
    assert!(r
        .diagnostics
        .iter()
        .any(|d| d.detail.contains("status bit")));
}

// ---------------------------------------------------------------------
// Panic mode and crash-consistency (the phase-abort satellite).
// ---------------------------------------------------------------------

/// Panic mode aborts at the phase boundary, after the node runtime has
/// been restored: pending counters drain and further phases run.
#[test]
fn panic_mode_abort_leaves_the_runtime_usable() {
    let mut cfg = SplitcConfig::t3d();
    cfg.sanitize = SanitizeMode::Panic;
    let mut sc = SplitC::with_config(MachineConfig::t3d(2), cfg);
    let src = sc.alloc(8, 8);
    let dst = sc.alloc(8, 8);
    let r = catch_unwind(AssertUnwindSafe(|| {
        sc.on(0, |ctx| {
            ctx.get(dst, GlobalPtr::new(1, src));
            let _ = ctx.read_u64(GlobalPtr::new(0, dst)); // hazard
        });
    }));
    let msg = *r
        .expect_err("panic mode must abort")
        .downcast::<String>()
        .unwrap();
    assert!(msg.contains("t3dsan"), "panic names the analyzer: {msg}");
    assert!(msg.contains("ReadBeforeGetSync"), "{msg}");

    // No poisoned shards: the interrupted get drains at the next sync
    // and a clean phase passes the next check.
    sc.on(0, |ctx| {
        ctx.sync();
        assert_eq!(ctx.gets_outstanding(), 0);
    });
    sc.barrier();
}

/// A user panic inside a phase body also restores the runtime before
/// propagating, under both `on` and the sharded phase engine.
#[test]
fn user_panics_leave_the_runtime_usable() {
    let mut sc = SplitC::new(MachineConfig::t3d(2));
    let cell = sc.alloc(8, 8);
    let r = catch_unwind(AssertUnwindSafe(|| {
        sc.on(0, |ctx| {
            ctx.put(GlobalPtr::new(1, cell), 1);
            panic!("user bug");
        })
    }));
    assert!(r.is_err());
    sc.on(0, |ctx| ctx.sync()); // the orphaned put completes
    assert_eq!(sc.machine().peek8(1, cell), 1);

    let r = catch_unwind(AssertUnwindSafe(|| {
        sc.par_phase_with(PhaseDriver::Seq, |ctx| {
            if ctx.pe() == 1 {
                panic!("user bug in a phase");
            }
        });
    }));
    assert!(r.is_err());
    // The runtime vector was restored: further phases execute.
    sc.par_phase_with(PhaseDriver::Seq, |ctx| {
        let _ = ctx.read_u64(GlobalPtr::new(1, cell));
    });
    sc.barrier();
}

// ---------------------------------------------------------------------
// Negative corpus + driver determinism.
// ---------------------------------------------------------------------

/// Properly synchronized split-phase traffic is silent under both
/// drivers.
#[test]
fn clean_programs_are_silent_under_both_drivers() {
    for driver in [PhaseDriver::Seq, PhaseDriver::Par(2)] {
        let mut cfg = SplitcConfig::t3d();
        cfg.sanitize = SanitizeMode::Collect;
        let mut sc = SplitC::with_config(MachineConfig::t3d(4), cfg);
        let cell = sc.alloc(4 * 8, 8);
        let dst = sc.alloc(4 * 8, 8);

        // puts + sync + barrier, then reads.
        sc.par_phase_with(driver, |ctx| {
            let right = ((ctx.pe() + 1) % ctx.nodes()) as u32;
            ctx.put(GlobalPtr::new(right, cell + ctx.pe() as u64 * 8), 7);
            ctx.sync();
        });
        sc.barrier();
        sc.par_phase_with(driver, |ctx| {
            let left = (ctx.pe() + ctx.nodes() - 1) % ctx.nodes();
            let gp = GlobalPtr::new(ctx.pe() as u32, cell + left as u64 * 8);
            assert_eq!(ctx.read_u64(gp), 7);
        });
        sc.barrier();

        // gets + sync, then the landing words.
        sc.par_phase_with(driver, |ctx| {
            let right = ((ctx.pe() + 1) % ctx.nodes()) as u32;
            let land = dst + ctx.pe() as u64 * 8;
            ctx.get(land, GlobalPtr::new(right, cell));
            ctx.sync();
            let _ = ctx.read_u64(GlobalPtr::new(ctx.pe() as u32, land));
        });
        sc.barrier();

        // signaling stores + allStoreSync, then reads.
        sc.par_phase_with(driver, |ctx| {
            let right = ((ctx.pe() + 1) % ctx.nodes()) as u32;
            ctx.store_u64(GlobalPtr::new(right, cell + ctx.pe() as u64 * 8), 9);
        });
        sc.all_store_sync();
        sc.par_phase_with(driver, |ctx| {
            let left = (ctx.pe() + ctx.nodes() - 1) % ctx.nodes();
            let gp = GlobalPtr::new(ctx.pe() as u32, cell + left as u64 * 8);
            assert_eq!(ctx.read_u64(gp), 9);
        });

        let r = report(&sc);
        assert!(r.is_empty(), "driver {driver:?}:\n{}", r.render_table());
        assert!(r.events_processed > 0, "the analyzer did see the events");
    }
}

/// Lock hand-off is a happens-before edge: serialized critical sections
/// over one word are not conflicting writes.
#[test]
fn lock_ordered_critical_sections_are_silent() {
    let mut sc = collect(4);
    let lock_off = sc.alloc(8, 8);
    let counter = sc.alloc(8, 8);
    let lock = GlobalLock::new(GlobalPtr::new(0, lock_off));
    for pe in 0..4 {
        sc.on(pe, |ctx| {
            assert!(ctx.lock_try_acquire(lock));
            let v = ctx.read_u64(GlobalPtr::new(0, counter));
            ctx.write_u64(GlobalPtr::new(0, counter), v + 1);
            ctx.lock_release(lock);
        });
    }
    assert_eq!(sc.machine().peek8(0, counter), 4);
    assert!(report(&sc).is_empty(), "{}", report(&sc).render_table());
}

/// The same unlocked counter updates ARE flagged: without the lock the
/// two writes race.
#[test]
fn unlocked_counter_updates_are_flagged() {
    let mut sc = collect(4);
    let counter = sc.alloc(8, 8);
    for pe in 0..2 {
        sc.on(pe, |ctx| {
            let v = ctx.read_u64(GlobalPtr::new(0, counter));
            ctx.write_u64(GlobalPtr::new(0, counter), v + 1);
        });
    }
    assert!(report(&sc).kinds().contains(&DiagKind::ConflictingPuts));
}

/// The sanitizer's verdict — and its rendered report, byte for byte —
/// is identical under the sequential and parallel phase drivers.
#[test]
fn hazard_reports_are_bit_identical_across_drivers() {
    let run = |driver: PhaseDriver| {
        let mut cfg = SplitcConfig::t3d();
        cfg.sanitize = SanitizeMode::Collect;
        let mut sc = SplitC::with_config(MachineConfig::t3d(4), cfg);
        let cell = sc.alloc(4 * 8, 8);
        // Every PE puts to its right neighbour; nobody syncs.
        sc.par_phase_with(driver, |ctx| {
            let right = ((ctx.pe() + 1) % ctx.nodes()) as u32;
            ctx.put(GlobalPtr::new(right, cell + ctx.pe() as u64 * 8), 1);
        });
        // Everyone reads the word its left neighbour targeted: stale.
        sc.par_phase_with(driver, |ctx| {
            let left = (ctx.pe() + ctx.nodes() - 1) % ctx.nodes();
            let gp = GlobalPtr::new(ctx.pe() as u32, cell + left as u64 * 8);
            let _ = ctx.read_u64(gp);
        });
        report(&sc).render_table()
    };
    let seq = run(PhaseDriver::Seq);
    assert!(seq.contains("StaleStoreRead"), "{seq}");
    for workers in [2, 3] {
        assert_eq!(seq, run(PhaseDriver::Par(workers)), "Par({workers})");
    }
}

/// `T3D_SAN` off by default: a config left at `Off` reports `None` and
/// the runtime carries no analyzer. (The env override is exercised by
/// the CI matrix, not here, to keep the test env-independent.)
#[test]
fn sanitizer_is_off_by_default() {
    if std::env::var("T3D_SAN").is_ok() {
        return; // the env fills in the default mode tested here
    }
    let mut sc = SplitC::new(MachineConfig::t3d(2));
    let cell = sc.alloc(8, 8);
    sc.on(0, |ctx| ctx.put(GlobalPtr::new(1, cell), 7));
    assert!(sc.san_report().is_none());
}
