//! Job-stream scheduler properties: the torus buddy allocator under an
//! exhaustive workload, trace-generation byte-identity, and the
//! cross-driver/cross-engine job-ledger oracle.
//!
//! The ledger test is the scheduler's analogue of the repository's
//! determinism contract: the *entire multi-tenant run* — every job's
//! dispatch time, partition placement, kernel result and completion
//! time — must be bit-identical whether kernels execute under the
//! sequential or sharded phase driver (`T3D_PAR`) and under the
//! cycle-accurate or skip-to-next-event engine (`T3D_EVENT`).

use t3d_machine::{EngineMode, PhaseDriver};
use t3d_prng::Rng;
use t3d_sched::{run_trace, ExecEnv, GenParams, KernelCache, PartitionAllocator, SimParams, Trace};
use t3d_torus::SubCube;

/// The big test machine: 8×4×4 = 128 PEs, the same shape the subcube
/// module pins its canonical shape sequence on.
const MACHINE: (u32, u32, u32) = (8, 4, 4);

/// Exhaustive alloc/free/coalesce property drive: a seeded random
/// workload of allocations and frees, with the full invariant set
/// checked after every step — no two live blocks overlap, free +
/// allocated PEs account for the whole machine, and draining
/// everything always coalesces back to one whole-machine block.
#[test]
fn allocator_random_workload_holds_invariants() {
    for seed in 0..4u64 {
        let mut rng = Rng::seed_from_u64(0xA110C + seed);
        let mut alloc = PartitionAllocator::new(MACHINE);
        let mut live: Vec<SubCube> = Vec::new();
        for step in 0..2_000 {
            // Bias toward allocation while the machine is empty-ish,
            // toward freeing when it fills.
            let fill = alloc.allocated_pes() as f64 / alloc.total_pes() as f64;
            if live.is_empty() || rng.gen_f64() > fill {
                let pes = 1u32 << rng.gen_range(0u32..8);
                if let Some(b) = alloc.alloc(pes) {
                    assert!(b.aligned(), "step {step}: {b} misaligned");
                    assert_eq!(b.pes(), u64::from(pes), "step {step}");
                    for l in &live {
                        assert!(!l.overlaps(&b), "step {step}: {b} overlaps live {l}");
                    }
                    live.push(b);
                }
            } else {
                let i = rng.gen_range(0usize..live.len());
                alloc.free(live.swap_remove(i));
            }
            let live_pes: u64 = live.iter().map(SubCube::pes).sum();
            assert_eq!(
                alloc.allocated_pes(),
                live_pes,
                "step {step}: PE accounting"
            );
            assert_eq!(
                alloc.free_pes() + live_pes,
                alloc.total_pes(),
                "step {step}: machine accounting"
            );
        }
        // Drain: everything must coalesce back to one free block.
        for b in live.drain(..) {
            alloc.free(b);
        }
        assert_eq!(alloc.free_pes(), alloc.total_pes());
        assert_eq!(alloc.fragmentation(), 0.0, "full coalescing after drain");
        // Back to one whole block means every split was undone by
        // exactly one coalesce.
        let stats = alloc.stats();
        assert_eq!(stats.splits, stats.coalesces, "drain undoes every split");
        let whole = alloc.alloc(128).expect("whole machine reallocates");
        assert_eq!(whole.pes(), 128);
        assert_eq!(
            alloc.stats().allocs,
            stats.frees + 1,
            "drained plus final alloc"
        );
    }
}

/// Exhaustive single-order sweeps: for every order, allocating the
/// whole machine in blocks of that size tiles it exactly, and freeing
/// in *any* rotation coalesces back to one block.
#[test]
fn allocator_tiles_every_order_exhaustively() {
    for order in 0..=7u32 {
        let pes = 1u32 << order;
        let count = 128 / u64::from(pes);
        let mut alloc = PartitionAllocator::new(MACHINE);
        let blocks: Vec<SubCube> = (0..count)
            .map(|i| {
                alloc
                    .alloc(pes)
                    .unwrap_or_else(|| panic!("block {i} of order {order} must fit"))
            })
            .collect();
        assert_eq!(alloc.free_pes(), 0, "order {order} tiles the machine");
        assert!(alloc.alloc(1).is_none());
        for (i, a) in blocks.iter().enumerate() {
            for b in &blocks[i + 1..] {
                assert!(!a.overlaps(b), "order {order}: {a} overlaps {b}");
            }
        }
        // Free at a rotated starting point: coalescing must not depend
        // on free order.
        let rot = (order as usize * 7) % blocks.len().max(1);
        for i in 0..blocks.len() {
            alloc.free(blocks[(i + rot) % blocks.len()]);
        }
        assert_eq!(alloc.free_pes(), 128);
        assert_eq!(alloc.fragmentation(), 0.0, "order {order} coalesces fully");
    }
}

/// Determinism of the generator as *bytes*: the same `GenParams` yield
/// byte-identical rendered traces (the property `t3d-sched gen --seed
/// S` twice relies on), and distinct seeds diverge.
#[test]
fn generated_traces_are_byte_identical_per_seed() {
    let p = GenParams {
        jobs: 64,
        mean_interarrival_cy: 10_000,
        min_order: 1,
        max_order: 5,
        seed: 0xDE7E_0421,
    };
    let a = Trace::generate(p).render();
    let b = Trace::generate(p).render();
    assert_eq!(a, b, "same params must render byte-identically");
    let parsed = Trace::parse(&a).expect("rendered traces parse");
    assert_eq!(parsed, Trace::generate(p), "render/parse round-trips");
    let other = Trace::generate(GenParams {
        seed: 0xDE7E_0422,
        ..p
    })
    .render();
    assert_ne!(a, other, "seed must matter");
}

/// The scheduler-level determinism oracle: one short trace, scheduled
/// under all four driver × engine combinations in one process, must
/// produce the same job ledger bit for bit. This is what the CI
/// `sched-smoke` matrix pins from the outside; here it runs without
/// any environment variables involved.
#[test]
fn job_ledger_is_identical_across_drivers_and_engines() {
    let trace = Trace::generate(GenParams {
        jobs: 8,
        mean_interarrival_cy: 20_000,
        min_order: 1,
        max_order: 2,
        seed: 0x1ED6E2,
    });
    let mut ledgers = Vec::new();
    for driver in [PhaseDriver::Seq, PhaseDriver::Par(2)] {
        for engine in [EngineMode::Cycle, EngineMode::Event] {
            let params = SimParams {
                machine: (2, 2, 1),
                backfill: true,
                env: ExecEnv::new(driver, engine),
            };
            // A fresh cache per combination: memoisation must not leak
            // results across engines, or the comparison proves nothing.
            let mut cache = KernelCache::new();
            let run = run_trace(&trace, &params, &mut cache);
            assert_eq!(run.outcomes.len(), trace.jobs.len());
            ledgers.push((driver, engine, run.ledger_fnv));
        }
    }
    let reference = ledgers[0].2;
    for (driver, engine, fnv) in &ledgers {
        assert_eq!(
            *fnv, reference,
            "{driver:?}/{engine:?} ledger diverged from {:?}/{:?}",
            ledgers[0].0, ledgers[0].1
        );
    }
}

/// Backfill must never delay any job relative to strict FCFS on this
/// workload *and* must strictly improve at least one wait when the
/// head blocks — the scheduling-policy sanity check behind the
/// `--backfill` flag.
#[test]
fn backfill_only_moves_jobs_earlier_here() {
    let trace = Trace::generate(GenParams {
        jobs: 12,
        mean_interarrival_cy: 5_000,
        min_order: 1,
        max_order: 2,
        seed: 77,
    });
    let env = ExecEnv::from_env();
    let mut cache = KernelCache::new();
    let strict = run_trace(
        &trace,
        &SimParams {
            machine: (2, 2, 1),
            backfill: false,
            env,
        },
        &mut cache,
    );
    let filled = run_trace(
        &trace,
        &SimParams {
            machine: (2, 2, 1),
            backfill: true,
            env,
        },
        &mut cache,
    );
    // Aggressive backfill can in general delay a wide job; on this
    // small mix it should only help. Makespan must not regress.
    assert!(filled.makespan_cy <= strict.makespan_cy);
    assert!(
        filled.metrics.wait.sum() <= strict.metrics.wait.sum(),
        "backfill increased total waiting"
    );
}
