//! Whole-application determinism: identical inputs must give identical
//! virtual timing and values, run after run — the property that makes
//! simulator-based measurement meaningful.
//!
//! The second half of this file is the parallel-driver oracle: every
//! phase that runs through the sharded engine must be bit-identical —
//! values *and* per-PE virtual clocks — whether the shards run
//! sequentially ([`PhaseDriver::Seq`]) or on threads
//! ([`PhaseDriver::Par`]).

use em3d::{run_version, run_version_with, Em3dParams, Version};
use t3d_machine::{Machine, MachineConfig, PhaseDriver, Spmd};
use t3d_microbench::probes::{local, sync};
use t3d_shell::blt::BltDirection;
use t3d_shell::FuncCode;

#[test]
fn em3d_runs_are_bit_identical() {
    for v in [
        Version::Simple,
        Version::Put,
        Version::Bulk,
        Version::StoreSync,
    ] {
        let a = run_version(4, Em3dParams::tiny(30.0), v);
        let b = run_version(4, Em3dParams::tiny(30.0), v);
        assert_eq!(
            a.cycles,
            b.cycles,
            "{}: cycle counts differ across runs",
            v.label()
        );
        assert_eq!(a.us_per_edge, b.us_per_edge);
        assert_eq!(a.ops, b.ops);
    }
}

#[test]
fn probe_surfaces_are_bit_identical() {
    let sizes = vec![4 * 1024, 64 * 1024];
    let a = local::read_profile(&sizes, 1 << 16);
    let b = local::read_profile(&sizes, 1 << 16);
    assert_eq!(a, b);
}

#[test]
fn sync_costs_are_bit_identical() {
    assert_eq!(sync::sync_costs(), sync::sync_costs());
}

// ---------------------------------------------------------------------
// Parallel-driver oracle: Seq and Par shards must agree exactly.
// ---------------------------------------------------------------------

#[test]
fn em3d_all_versions_parallel_matches_sequential_oracle() {
    let p = Em3dParams::tiny(40.0);
    for v in Version::all() {
        let seq = run_version_with(PhaseDriver::Seq, 4, p, v);
        let par = run_version_with(PhaseDriver::Par(4), 4, p, v);
        // Em3dResult equality covers values (verified against the host
        // reference inside run_version), cycle counts, op counters and
        // the per-PE clock fingerprint.
        assert_eq!(seq, par, "{}: drivers diverged", v.label());
        assert_eq!(
            seq.clock_fnv,
            par.clock_fnv,
            "{}: per-PE virtual clocks diverged",
            v.label()
        );
    }
}

/// Full state fingerprint: every PE's clock and a hash of its first 8
/// KiB of memory.
fn fingerprint(m: &Machine) -> Vec<u64> {
    let mut fp = Vec::new();
    for pe in 0..m.nodes() {
        fp.push(m.clock(pe));
        let mut buf = vec![0u8; 8192];
        m.peek_mem(pe, 0, &mut buf);
        fp.push(buf.iter().fold(0xcbf2_9ce4_8422_2325u64, |h, &b| {
            (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
        }));
    }
    fp
}

/// Remote-store + prefetch probe (the Figure 5/6 access patterns) as an
/// SPMD phase program.
fn store_prefetch_probe(driver: PhaseDriver) -> Vec<u64> {
    let mut m = Machine::new(MachineConfig::t3d(8));
    let mut spmd = Spmd::new(&mut m);
    for _ in 0..3 {
        spmd.par_phase_with(driver, |cpu| {
            let right = ((cpu.pe() + 1) % cpu.nodes()) as u32;
            cpu.annex_set(1, right, FuncCode::Uncached);
            for i in 0..16u64 {
                cpu.st8(cpu.va(1, 0x1000 + i * 8), (cpu.pe() as u64) << i);
            }
            cpu.memory_barrier();
            cpu.wait_write_acks();
            for i in 0..4u64 {
                cpu.fetch(cpu.va(1, 0x2000 + i * 8));
            }
            for _ in 0..4 {
                let _ = cpu.pop_prefetch();
            }
        });
        spmd.barrier();
    }
    fingerprint(spmd.machine())
}

/// Hotspot probe: every PE takes fetch&increment tickets at PE 0 and
/// messages it — maximal cross-shard effect merging.
fn hotspot_probe(driver: PhaseDriver) -> Vec<u64> {
    let mut m = Machine::new(MachineConfig::t3d(8));
    let mut spmd = Spmd::new(&mut m);
    spmd.par_phase_with(driver, |cpu| {
        let pe = cpu.pe();
        for k in 0..8u64 {
            let _ = cpu.fetch_inc(0, 0);
            cpu.msg_send(0, [pe as u64, k, 0, 0]);
        }
    });
    spmd.barrier();
    fingerprint(spmd.machine())
}

/// Bulk-transfer probe: BLT writes around a ring (the Figure 8
/// mechanism).
fn blt_ring_probe(driver: PhaseDriver) -> Vec<u64> {
    let mut m = Machine::new(MachineConfig::t3d(8));
    for pe in 0..8 {
        for i in 0..64u64 {
            m.poke8(pe, 0x4000 + i * 8, (pe as u64) * 100 + i);
        }
    }
    let mut spmd = Spmd::new(&mut m);
    spmd.par_phase_with(driver, |cpu| {
        let right = (cpu.pe() + 1) % cpu.nodes();
        let h = cpu.blt_start(BltDirection::Write, 0x4000, right, 0x6000, 512);
        cpu.blt_wait(h);
    });
    spmd.barrier();
    fingerprint(spmd.machine())
}

#[test]
fn probe_programs_parallel_matches_sequential_oracle() {
    for probe in [store_prefetch_probe, hotspot_probe, blt_ring_probe] {
        let seq = probe(PhaseDriver::Seq);
        for threads in [2, 5, 8] {
            assert_eq!(
                seq,
                probe(PhaseDriver::Par(threads)),
                "probe diverged from the sequential oracle at {threads} threads"
            );
        }
    }
}

#[test]
fn hundred_parallel_phases_hash_stably() {
    // Loom-free stress: 100 communication-heavy parallel phases; the
    // rolling state hash after every phase must be identical across
    // full re-runs (and to the sequential oracle). Any scheduling
    // nondeterminism in the shard pool would shift at least one hash.
    let run = |driver: PhaseDriver| {
        let mut m = Machine::new(MachineConfig::t3d(8));
        let mut spmd = Spmd::new(&mut m);
        let mut hashes = Vec::with_capacity(100);
        for round in 0..100u64 {
            spmd.par_phase_with(driver, |cpu| {
                let n = cpu.nodes();
                let stride = 1 + (round as usize % (n - 1));
                let peer = ((cpu.pe() + stride) % n) as u32;
                cpu.annex_set(1, peer, FuncCode::Uncached);
                cpu.st8(
                    cpu.va(1, 0x800 + (round % 32) * 8),
                    round << 8 | cpu.pe() as u64,
                );
                cpu.memory_barrier();
                let _ = cpu.fetch_inc(peer as usize, 1);
            });
            spmd.barrier();
            hashes.push(
                fingerprint(spmd.machine())
                    .iter()
                    .fold(0xcbf2_9ce4_8422_2325u64, |h, &v| {
                        (h ^ v).wrapping_mul(0x100_0000_01b3)
                    }),
            );
        }
        hashes
    };
    let first = run(PhaseDriver::Par(8));
    assert_eq!(first, run(PhaseDriver::Par(8)), "re-run shifted a hash");
    assert_eq!(first, run(PhaseDriver::Seq), "parallel diverged from Seq");
}
