//! Whole-application determinism: identical inputs must give identical
//! virtual timing and values, run after run — the property that makes
//! simulator-based measurement meaningful.

use em3d::{run_version, Em3dParams, Version};
use t3d_microbench::probes::{local, sync};

#[test]
fn em3d_runs_are_bit_identical() {
    for v in [
        Version::Simple,
        Version::Put,
        Version::Bulk,
        Version::StoreSync,
    ] {
        let a = run_version(4, Em3dParams::tiny(30.0), v);
        let b = run_version(4, Em3dParams::tiny(30.0), v);
        assert_eq!(
            a.cycles,
            b.cycles,
            "{}: cycle counts differ across runs",
            v.label()
        );
        assert_eq!(a.us_per_edge, b.us_per_edge);
        assert_eq!(a.ops, b.ops);
    }
}

#[test]
fn probe_surfaces_are_bit_identical() {
    let sizes = vec![4 * 1024, 64 * 1024];
    let a = local::read_profile(&sizes, 1 << 16);
    let b = local::read_profile(&sizes, 1 << 16);
    assert_eq!(a, b);
}

#[test]
fn sync_costs_are_bit_identical() {
    assert_eq!(sync::sync_costs(), sync::sync_costs());
}
