//! Shape tests: the qualitative claims of every figure, asserted on
//! reduced sweeps so the suite stays fast. Quantitative comparisons live
//! in `EXPERIMENTS.md`; these tests pin the *orderings and crossovers*
//! that constitute the paper's conclusions.

use em3d::{run_version, Em3dParams, Version};
use t3d_microbench::probes::{bulk, local, prefetch, remote, sync};
use t3d_microbench::report::Series;

/// Figure 1: the three T3D latency plateaus, the workstation's L2 shelf,
/// and the missing-vs-present TLB inflection.
#[test]
fn fig1_shape() {
    let sizes = vec![4 * 1024, 64 * 1024, 256 * 1024];
    let t3d = local::read_profile(&sizes, 1 << 20);
    let hit = t3d.at(4 * 1024, 8).unwrap();
    let mem = t3d.at(64 * 1024, 32).unwrap();
    let off = t3d.at(256 * 1024, 16 * 1024).unwrap();
    let worst = t3d.at(256 * 1024, 64 * 1024).unwrap();
    assert!(hit < mem && mem < off && off < worst, "plateaus ordered");
    assert!(mem / hit > 15.0, "cache miss is ~22x a hit");

    let ws = local::workstation_read_profile(&sizes, 1 << 20);
    let ws_l2 = ws.at(64 * 1024, 32).unwrap();
    assert!(
        hit < ws_l2 && ws_l2 < mem,
        "L2 shelf sits between L1 and memory"
    );
}

/// Figure 2: writes are far cheaper than reads; merging below 32 B.
#[test]
fn fig2_shape() {
    let w = local::write_profile(&[64 * 1024], 1 << 20);
    let r = local::read_profile(&[64 * 1024], 1 << 20);
    assert!(w.at(64 * 1024, 32).unwrap() * 3.0 < r.at(64 * 1024, 32).unwrap());
    assert!(w.at(64 * 1024, 8).unwrap() < w.at(64 * 1024, 32).unwrap());
}

/// Figure 4: uncached < cached < Split-C read; all under a microsecond;
/// remote ≈ 3-4x local memory.
#[test]
fn fig4_shape() {
    let sizes = vec![64 * 1024];
    let un = remote::profile(remote::RemoteOp::UncachedRead, &sizes, 1 << 20)
        .at(64 * 1024, 64)
        .unwrap();
    let ca = remote::profile(remote::RemoteOp::CachedRead, &sizes, 1 << 20)
        .at(64 * 1024, 64)
        .unwrap();
    let sc = remote::profile(remote::RemoteOp::SplitcRead, &sizes, 1 << 20)
        .at(64 * 1024, 64)
        .unwrap();
    assert!(
        un < ca && ca < sc,
        "uncached {un:.0} < cached {ca:.0} < Split-C {sc:.0} ns"
    );
    assert!(sc < 1000.0, "remote access under a microsecond");
}

/// Figure 5/7: blocking writes ~850 ns; non-blocking sustain ~115 ns; the
/// Split-C put sits in between at ~300 ns.
#[test]
fn fig5_and_fig7_shape() {
    use t3d_microbench::probes::put;
    let blocking = remote::profile(remote::RemoteOp::BlockingWrite, &[64 * 1024], 1 << 20)
        .at(64 * 1024, 64)
        .unwrap();
    let profiles = put::nonblocking_profiles(&[64 * 1024], 1 << 20);
    let nonblocking = profiles[0].at(64 * 1024, 64).unwrap();
    let put = profiles[1].at(64 * 1024, 64).unwrap();
    assert!(nonblocking < put && put < blocking);
    assert!(blocking / nonblocking > 5.0, "pipelining buys >5x");
}

/// Figure 6: pipelining hides ~75% of remote latency by group 16.
#[test]
fn fig6_shape() {
    let series = prefetch::group_sweep();
    let raw = &series[0];
    let single = raw.at(1).unwrap();
    let full = raw.at(16).unwrap();
    assert!(
        full < single * 0.35,
        "group 16 ({full:.0} ns) vs single ({single:.0} ns)"
    );
    // Raw round trip is ~530 ns; at group 16 the un-hidden residue is
    // roughly a quarter of the single-prefetch cost.
    assert!(
        (150.0..260.0).contains(&full),
        "pipelined cost {full:.0} ns (paper: ~210)"
    );
}

/// Figure 8: the mechanism ranking flips in the paper's order as size
/// grows, and the policy's crossovers land where the paper put them.
#[test]
fn fig8_shape() {
    let sizes = vec![8u64, 32, 256, 4 * 1024, 32 * 1024, 256 * 1024];
    let reads = bulk::read_bandwidth(&sizes);
    assert_eq!(bulk::best_read_mechanism(&reads, 8), "uncached");
    assert_eq!(bulk::best_read_mechanism(&reads, 32), "cached");
    assert_eq!(bulk::best_read_mechanism(&reads, 256), "prefetch");
    assert_eq!(bulk::best_read_mechanism(&reads, 4 * 1024), "prefetch");
    assert_eq!(bulk::best_read_mechanism(&reads, 32 * 1024), "BLT");
    assert_eq!(bulk::best_read_mechanism(&reads, 256 * 1024), "BLT");

    let find = |label: &str, s: &[Series]| -> Series {
        s.iter()
            .find(|x| x.label == label)
            .expect("series present")
            .clone()
    };
    // The prefetch->BLT crossover sits between 8 KB and 32 KB (paper: ~16 KB).
    let blt = find("BLT", &reads);
    let pf = find("prefetch", &reads);
    assert!(pf.at(4 * 1024).unwrap() > blt.at(4 * 1024).unwrap());
    assert!(pf.at(32 * 1024).unwrap() < blt.at(32 * 1024).unwrap());

    let writes = bulk::write_bandwidth(&[4 * 1024, 256 * 1024]);
    let stores = find("stores", &writes);
    let wblt = find("BLT", &writes);
    for &n in &[4 * 1024u64, 256 * 1024] {
        assert!(
            stores.at(n).unwrap() > wblt.at(n).unwrap(),
            "stores win writes at {n} B"
        );
    }
}

/// Figure 9: the version ordering at communication-heavy settings, and
/// convergence of the optimized versions at zero communication.
#[test]
fn fig9_shape() {
    let p = Em3dParams {
        nodes_per_pe: 60,
        degree: 8,
        pct_remote: 40.0,
        steps: 1,
        seed: 3,
    };
    let us = |v: Version| run_version(8, p, v).us_per_edge;
    let simple = us(Version::Simple);
    let bundle = us(Version::Bundle);
    let unroll = us(Version::Unroll);
    let get = us(Version::Get);
    let put = us(Version::Put);
    let bulk = us(Version::Bulk);
    assert!(
        simple > bundle && bundle > unroll && unroll > get && get > put && put > bulk,
        "ordering: {simple:.3} > {bundle:.3} > {unroll:.3} > {get:.3} > {put:.3} > {bulk:.3}"
    );
    assert!(
        simple / bulk > 1.5,
        "the full optimization stack buys >1.5x at 40% remote"
    );
}

/// Section 2 headline: remote uncached read ≈ 3-4x a local miss, and the
/// T3D streams about twice the workstation's bandwidth.
#[test]
fn headline_ratios() {
    let remote_ns = remote::profile(remote::RemoteOp::UncachedRead, &[64 * 1024], 1 << 20)
        .at(64 * 1024, 64)
        .unwrap();
    let local_ns = local::read_profile(&[64 * 1024], 1 << 20)
        .at(64 * 1024, 64)
        .unwrap();
    let ratio = remote_ns / local_ns;
    assert!((3.0..5.0).contains(&ratio), "remote/local {ratio:.2}");
}

/// Section 7 headline: the AM-equivalent queue beats the interrupt path
/// by an order of magnitude on the receive side.
#[test]
fn sync_table_headline() {
    let costs = sync::sync_costs();
    let get = |name: &str| {
        costs
            .iter()
            .find(|c| c.name.contains(name))
            .map(|c| c.cycles)
            .expect("probed")
    };
    assert!(get("dispatch") * 10 < get("receive interrupt"));
    assert!(get("deposit") < get("receive interrupt"));
    assert_eq!(get("annex"), 23);
}
