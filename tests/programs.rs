//! Cross-crate integration tests: whole SPMD programs on the simulated
//! machine, exercising the Split-C runtime the way the paper's
//! applications do.

use splitc::runtime::{AM_ADD_U64, AM_USER_BASE};
use splitc::{GlobalPtr, SplitC, SpreadArray};
use t3d_machine::MachineConfig;

/// All-to-all personalized exchange with bulk puts, then verification.
#[test]
fn all_to_all_exchange() {
    const P: u32 = 8;
    const WORDS: u64 = 16;
    let mut sc = SplitC::new(MachineConfig::t3d(P));
    let send = sc.alloc(P as u64 * WORDS * 8, 8);
    let recv = sc.alloc(P as u64 * WORDS * 8, 8);
    // Fill send buffers: word w for destination d from source s encodes
    // (s, d, w).
    for s in 0..P as usize {
        for d in 0..P as u64 {
            for w in 0..WORDS {
                sc.machine().poke8(
                    s,
                    send + (d * WORDS + w) * 8,
                    (s as u64) << 32 | d << 16 | w,
                );
            }
        }
    }
    sc.run_phase(|ctx| {
        let me = ctx.pe() as u64;
        for d in 0..ctx.nodes() as u64 {
            let dst_off = recv + me * WORDS * 8; // my slot at the receiver
            ctx.bulk_put(
                GlobalPtr::new(d as u32, dst_off),
                send + d * WORDS * 8,
                WORDS * 8,
            );
        }
        ctx.sync();
    });
    sc.barrier();
    for d in 0..P as usize {
        for s in 0..P as u64 {
            for w in 0..WORDS {
                let got = sc.machine().peek8(d, recv + (s * WORDS + w) * 8);
                assert_eq!(got, s << 32 | (d as u64) << 16 | w, "s={s} d={d} w={w}");
            }
        }
    }
}

/// Global sum reduction: leaves store partial sums at the root, which
/// waits with `store_sync` for exactly the expected data.
#[test]
fn reduction_with_store_sync() {
    const P: u32 = 16;
    let mut sc = SplitC::new(MachineConfig::t3d(P));
    let slots = sc.alloc(P as u64 * 8, 8);
    sc.run_phase(|ctx| {
        let me = ctx.pe() as u64;
        if me != 0 {
            let contribution = (me + 1) * 100;
            ctx.store_u64(GlobalPtr::new(0, slots + me * 8), contribution);
            // Push the store out so its arrival is logged.
            let pe = ctx.pe();
            ctx.machine().memory_barrier(pe);
        }
    });
    let total = sc.on(0, |ctx| {
        ctx.store_sync((P as u64 - 1) * 8);
        let mut sum = 100u64; // own contribution
        for i in 1..P as u64 {
            sum += ctx.machine().ld8(0, slots + i * 8);
        }
        sum
    });
    let expected: u64 = (1..=P as u64).map(|i| i * 100).sum();
    assert_eq!(total, expected);
}

/// Pointer-chasing across nodes: a distributed linked list walked with
/// blocking reads, as a C-like language must support (global pointers in
/// shared data structures).
#[test]
fn distributed_linked_list_walk() {
    const P: u32 = 8;
    const LEN: u64 = 64;
    let mut sc = SplitC::new(MachineConfig::t3d(P));
    let nodes = sc.alloc(LEN * 16, 16); // {value, next} pairs, one per hop
                                        // Build the list hopping between processors: element i lives on
                                        // PE (i*3) % P at slot i.
    let place = |i: u64| GlobalPtr::new(((i * 3) % P as u64) as u32, nodes + i * 16);
    for i in 0..LEN {
        let gp = place(i);
        let next = if i + 1 < LEN {
            place(i + 1)
        } else {
            GlobalPtr::NULL
        };
        sc.machine().poke8(gp.pe() as usize, gp.addr(), i * 7);
        sc.machine()
            .poke8(gp.pe() as usize, gp.addr() + 8, next.bits());
    }
    let sum = sc.on(0, |ctx| {
        let mut cur = place(0);
        let mut sum = 0u64;
        while !cur.is_null() {
            sum += ctx.read_u64(cur);
            cur = GlobalPtr::from_bits(ctx.read_u64(cur.local_add(8)));
        }
        sum
    });
    assert_eq!(sum, (0..LEN).map(|i| i * 7).sum::<u64>());
}

/// A spread-array SAXPY with global addressing: every node updates the
/// elements it owns; results checked globally.
#[test]
fn spread_array_saxpy() {
    const P: u32 = 4;
    const N: u64 = 1000;
    let mut sc = SplitC::new(MachineConfig::t3d(P));
    let xs = SpreadArray::new(sc.alloc(N * 8 / P as u64 + 8, 8), 8, N, P);
    let ys = SpreadArray::new(sc.alloc(N * 8 / P as u64 + 8, 8), 8, N, P);
    for i in 0..N {
        let (x, y) = (xs.gptr(i), ys.gptr(i));
        sc.machine()
            .poke8(x.pe() as usize, x.addr(), (i as f64).to_bits());
        sc.machine()
            .poke8(y.pe() as usize, y.addr(), (2.0 * i as f64).to_bits());
    }
    sc.run_phase(|ctx| {
        let pe = ctx.pe();
        for i in xs.owned_by(pe as u32) {
            let x = f64::from_bits(ctx.machine().ld8(pe, xs.gptr(i).addr()));
            let y = f64::from_bits(ctx.machine().ld8(pe, ys.gptr(i).addr()));
            let r = 3.0 * x + y;
            ctx.machine().st8(pe, ys.gptr(i).addr(), r.to_bits());
            ctx.advance(12);
        }
    });
    sc.barrier();
    for i in 0..N {
        let y = ys.gptr(i);
        let got = f64::from_bits(sc.machine().peek8(y.pe() as usize, y.addr()));
        assert_eq!(got, 3.0 * i as f64 + 2.0 * i as f64, "element {i}");
    }
}

/// Work queue with fetch&increment: nodes claim tasks from a shared
/// counter; every task is executed exactly once.
#[test]
fn fetch_inc_work_queue() {
    const P: u32 = 8;
    const TASKS: u64 = 100;
    let mut sc = SplitC::new(MachineConfig::t3d(P));
    let done = sc.alloc(TASKS * 8, 8);
    sc.run_phase(|ctx| loop {
        let pe = ctx.pe();
        let t = ctx.machine().fetch_inc(pe, 0, 1);
        if t >= TASKS {
            break;
        }
        // "Execute" task t: mark it with our PE + 1.
        ctx.am_deposit(0, AM_ADD_U64, [done + t * 8, ctx.pe() as u64 + 1, 0, 0]);
    });
    sc.barrier();
    for t in 0..TASKS {
        let v = sc.machine().peek8(0, done + t * 8);
        assert!(
            (1..=P as u64).contains(&v),
            "task {t} executed exactly once (marker {v})"
        );
    }
}

/// User-registered AM handlers compose with the runtime: a remote
/// compare-and-mark protocol.
#[test]
fn user_am_handler_protocol() {
    const P: u32 = 4;
    let mut sc = SplitC::new(MachineConfig::t3d(P));
    let maxes = sc.alloc(8, 8);
    let id = sc.register_handler(AM_USER_BASE + 1, |m, pe, args| {
        let cur = m.peek8(pe, args[0]);
        if args[1] > cur {
            m.poke8(pe, args[0], args[1]);
        }
    });
    sc.run_phase(|ctx| {
        let v = [17u64, 99, 23, 45][ctx.pe()];
        ctx.am_deposit(0, id, [maxes, v, 0, 0]);
    });
    sc.barrier();
    assert_eq!(
        sc.machine().peek8(0, maxes),
        99,
        "max-reduce via AM handlers"
    );
}

/// The native message queue works end to end, albeit expensively.
#[test]
fn native_message_queue_roundtrip() {
    let mut sc = SplitC::new(MachineConfig::t3d(2));
    sc.on(0, |ctx| {
        let pe = ctx.pe();
        ctx.machine().msg_send(pe, 1, [11, 22, 33, 44]);
    });
    sc.on(1, |ctx| {
        let pe = ctx.pe();
        ctx.machine().advance(pe, 1_000);
        let t0 = ctx.clock();
        let msg = ctx.machine().msg_receive(pe).expect("delivered");
        assert_eq!(msg.words, [11, 22, 33, 44]);
        assert!(
            ctx.clock() - t0 >= 3_750,
            "the 25 us interrupt cost is unavoidable"
        );
    });
}
