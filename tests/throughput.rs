//! Integration tests for the simulator-throughput benchmark layer: the
//! determinism checksum must be identical across phase drivers and
//! repeated runs, and a corrupted run must fail the measurement instead
//! of posting a rate — a fast-but-wrong engine never benchmarks well.

use t3d_machine::{EngineMode, Machine, MachineConfig, PhaseDriver};
use t3d_microbench::probes::attribution;
use t3d_perf::{measure, RunSample, ThroughputSpec};

/// Runs one scenario under `measure` and returns its throughput block.
fn measured(name: &str, driver: PhaseDriver, engine: EngineMode) -> t3d_perf::Throughput {
    let s = attribution::all()
        .iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("no scenario {name}"));
    measure(ThroughputSpec { warmup: 1, runs: 2 }, || {
        let run = (s.run)(driver, engine);
        RunSample {
            sim_cycles: run.report.total(),
            sim_ops: 0,
            checksum: run.checksum,
        }
    })
    .unwrap_or_else(|e| panic!("{name} under {driver:?}/{engine:?}: {e}"))
}

#[test]
fn checksums_are_identical_across_drivers_and_repeated_runs() {
    // `measure` itself enforces run-to-run identity (warmup included);
    // across drivers and engines the whole throughput fingerprint must
    // also agree.
    for name in ["phase.exchange", "splitc.getput", "sync.barrier"] {
        let seq = measured(name, PhaseDriver::Seq, EngineMode::Cycle);
        let par = measured(name, PhaseDriver::Par(4), EngineMode::Cycle);
        let event = measured(name, PhaseDriver::Par(4), EngineMode::Event);
        assert_eq!(seq.checksum, par.checksum, "{name}: state diverged");
        assert_eq!(seq.sim_cycles, par.sim_cycles, "{name}: cycles diverged");
        assert_eq!(seq.checksum, event.checksum, "{name}: engine diverged");
        assert_eq!(
            seq.sim_cycles, event.sim_cycles,
            "{name}: engine cycles diverged"
        );
    }
}

#[test]
fn every_scenario_is_measurable_under_both_drivers() {
    for s in attribution::all() {
        for driver in [PhaseDriver::Seq, PhaseDriver::Par(4)] {
            for engine in [EngineMode::Cycle, EngineMode::Event] {
                let t = measure(ThroughputSpec { warmup: 0, runs: 2 }, || {
                    let run = (s.run)(driver, engine);
                    RunSample {
                        sim_cycles: run.report.total(),
                        sim_ops: 0,
                        checksum: run.checksum,
                    }
                })
                .unwrap_or_else(|e| panic!("{} under {driver:?}/{engine:?}: {e}", s.name));
                assert!(t.cycles_per_sec.mean > 0.0, "{}: no rate", s.name);
            }
        }
    }
}

#[test]
fn a_corrupted_run_fails_with_a_checksum_mismatch() {
    let mut runs = 0u32;
    let err = measure(ThroughputSpec { warmup: 0, runs: 3 }, || {
        let mut m = Machine::new(MachineConfig::t3d(2));
        m.st8(0, 0x100, 7);
        m.memory_barrier(0);
        runs += 1;
        if runs == 3 {
            // The fuzzer's fault-injection hook: one flipped byte in
            // the snapshot region must sink the whole measurement.
            m.corrupt_byte(1, 0x200);
        }
        RunSample {
            sim_cycles: m.clock(0),
            sim_ops: 1,
            checksum: m.snapshot_region(0, 0x400).fnv64(),
        }
    })
    .expect_err("corrupted third run must fail the measurement");
    assert!(err.contains("nondeterministic"), "unexpected error: {err}");
    assert!(err.contains("checksum"), "unexpected error: {err}");
}

#[test]
fn a_cycle_divergence_also_fails_the_measurement() {
    let mut runs = 0u64;
    let err = measure(ThroughputSpec { warmup: 0, runs: 2 }, || {
        runs += 1;
        RunSample {
            sim_cycles: 100 + runs % 2,
            sim_ops: 1,
            checksum: 42,
        }
    })
    .expect_err("wobbling cycles must fail");
    assert!(err.contains("nondeterministic"), "unexpected error: {err}");
}
