//! Integration tests for `t3d-lint`, the static analyzer.
//!
//! Three corpora:
//!
//! * **positive** — one minimal program per rule ID, pinned to the
//!   exact diagnostic site (PE, target, address, op index) so the
//!   analyzer's attribution stays stable;
//! * **EM3D negative** — all seven versions' *recorded* op streams
//!   (real simulated runs) must lint free of hazard rules, with the
//!   advisory profile pinned: the lint reproduces the paper's story
//!   statically — `Simple`/`Bundle`/`Unroll` are element-loop bound
//!   (T3D-P001), `Get` overflows the 16-deep prefetch queue
//!   (T3D-P005), and `Put`/`Bulk`/`StoreSync` are clean;
//! * **fuzz negative** — every program the checked-in fuzz corpus
//!   denotes lints clean of hazard rules without being executed.

use em3d::{run_version_recorded, Em3dParams, Version};
use splitc::{GlobalPtr, RecEvent, ScOp, SplitcConfig};
use t3d_fuzz::{case_seed, lint_case, program_for_seed};
use t3d_lint::{lint, LintProgram, Rule};
use t3d_machine::{MachineConfig, PhaseDriver};

/// Expected site of the one diagnostic a minimal program trips.
struct Site {
    rule: Rule,
    pe: u32,
    target: u32,
    addr: u64,
    op_idx: usize,
}

fn minimal_cases(mcfg: &MachineConfig, scfg: &SplitcConfig) -> Vec<(LintProgram, Site)> {
    let mut cases = Vec::new();

    // T3D-H001: the issuer reads the landing word before sync().
    let mut p = LintProgram::new(4);
    p.push(
        0,
        ScOp::Get {
            local_off: 64,
            src: GlobalPtr::new(1, 128),
        },
    );
    p.push(
        0,
        ScOp::ReadU64 {
            src: GlobalPtr::new(0, 64),
        },
    );
    p.push(0, ScOp::Sync);
    cases.push((
        p,
        Site {
            rule: Rule::H001ReadBeforeGetSync,
            pe: 0,
            target: 0,
            addr: 64,
            op_idx: 1,
        },
    ));

    // T3D-H002: store_sync with no store traffic to consume.
    let mut p = LintProgram::new(4);
    p.push(0, ScOp::StoreSync { bytes: 8 });
    cases.push((
        p,
        Site {
            rule: Rule::H002UnbalancedStoreSync,
            pe: 0,
            target: 0,
            addr: 0,
            op_idx: 0,
        },
    ));

    // T3D-H003: PE1's collective sequence diverges at collective 0.
    let mut p = LintProgram::new(2);
    p.streams[0].push(RecEvent::Barrier);
    p.streams[1].push(RecEvent::PhaseEnd);
    cases.push((
        p,
        Site {
            rule: Rule::H003BarrierDivergence,
            pe: 1,
            target: 0,
            addr: 0,
            op_idx: 0,
        },
    ));

    // T3D-H004: PE0 and PE1 put the same word on PE2, unordered.
    let mut p = LintProgram::new(4);
    p.push(
        0,
        ScOp::Put {
            dst: GlobalPtr::new(2, 64),
            value: 1,
        },
    );
    p.push(0, ScOp::Sync);
    p.push(
        1,
        ScOp::Put {
            dst: GlobalPtr::new(2, 64),
            value: 2,
        },
    );
    p.push(1, ScOp::Sync);
    cases.push((
        p,
        Site {
            rule: Rule::H004ConflictingPuts,
            pe: 1,
            target: 2,
            addr: 64,
            op_idx: 0,
        },
    ));

    // T3D-H005: PE1 reads a word PE0 has put but never synced.
    let mut p = LintProgram::new(4);
    p.push(
        0,
        ScOp::Put {
            dst: GlobalPtr::new(2, 64),
            value: 1,
        },
    );
    p.push(
        1,
        ScOp::ReadU64 {
            src: GlobalPtr::new(2, 64),
        },
    );
    cases.push((
        p,
        Site {
            rule: Rule::H005StaleStoreRead,
            pe: 1,
            target: 2,
            addr: 64,
            op_idx: 0,
        },
    ));

    // T3D-H006: PE1 overwrites the source of PE0's bound get.
    let mut p = LintProgram::new(4);
    p.push(
        0,
        ScOp::Get {
            local_off: 64,
            src: GlobalPtr::new(2, 128),
        },
    );
    p.push(0, ScOp::Sync);
    p.push(
        1,
        ScOp::WriteU64 {
            dst: GlobalPtr::new(2, 128),
            value: 9,
        },
    );
    cases.push((
        p,
        Site {
            rule: Rule::H006PrefetchOrderMisuse,
            pe: 0,
            target: 2,
            addr: 128,
            op_idx: 0,
        },
    ));

    // T3D-H007: a read of PE 9 on a 4-node machine.
    let mut p = LintProgram::new(4);
    p.push(
        0,
        ScOp::ReadU64 {
            src: GlobalPtr::new(9, 64),
        },
    );
    cases.push((
        p,
        Site {
            rule: Rule::H007OutOfBounds,
            pe: 0,
            target: 9,
            addr: 64,
            op_idx: 0,
        },
    ));

    // T3D-P001: an element read loop as deep as the prefetch queue —
    // attributed to the op that started the run.
    let mut p = LintProgram::new(4);
    for i in 0..mcfg.shell.prefetch_depth as u64 {
        p.push(
            0,
            ScOp::ReadU64 {
                src: GlobalPtr::new(1, 64 + 8 * i),
            },
        );
    }
    cases.push((
        p,
        Site {
            rule: Rule::P001ElementLoopTransfer,
            pe: 0,
            target: 1,
            addr: 64,
            op_idx: 0,
        },
    ));

    // T3D-P002: a stride of page x banks lands every element on one
    // DRAM bank, off-page each time.
    let stride = mcfg.mem.dram.page_bytes * mcfg.mem.dram.banks;
    let mut p = LintProgram::new(4);
    p.push(
        0,
        ScOp::BulkReadStrided {
            local_off: 0,
            src: GlobalPtr::new(1, 64),
            count: 8,
            elem_bytes: 8,
            stride_bytes: stride,
        },
    );
    cases.push((
        p,
        Site {
            rule: Rule::P002SameBankStride,
            pe: 0,
            target: 1,
            addr: 64,
            op_idx: 0,
        },
    ));

    // T3D-P003: one sub-word write per write-buffer entry, each to a
    // distinct L1 line — attributed to the run's first write.
    let line = mcfg.mem.l1.line as u64;
    let mut p = LintProgram::new(4);
    for i in 0..mcfg.mem.wbuf.entries as u64 {
        p.push(
            0,
            ScOp::ByteWrite {
                dst: GlobalPtr::new(0, 64 + i * line),
                value: 1,
            },
        );
    }
    cases.push((
        p,
        Site {
            rule: Rule::P003NonMergingByteWrites,
            pe: 0,
            target: 0,
            addr: 64,
            op_idx: 0,
        },
    ));

    // T3D-P004: sync() immediately after a lone get — attributed to
    // the sync.
    let mut p = LintProgram::new(4);
    p.push(
        0,
        ScOp::Get {
            local_off: 64,
            src: GlobalPtr::new(1, 128),
        },
    );
    p.push(0, ScOp::Sync);
    cases.push((
        p,
        Site {
            rule: Rule::P004EagerSync,
            pe: 0,
            target: 1,
            addr: 128,
            op_idx: 1,
        },
    ));

    // T3D-P005: the get that no longer fits the full queue (the
    // `prefetch_depth`-th op, counting from the first issue at 512).
    let depth = mcfg.shell.prefetch_depth as u64;
    let mut p = LintProgram::new(4);
    for i in 0..=depth + 1 {
        p.push(
            0,
            ScOp::Get {
                local_off: 8 * i,
                src: GlobalPtr::new(1, 512 + 8 * i),
            },
        );
    }
    p.push(0, ScOp::Sync);
    cases.push((
        p,
        Site {
            rule: Rule::P005PrefetchQueueOverflow,
            pe: 0,
            target: 1,
            addr: 512 + 8 * depth,
            op_idx: mcfg.shell.prefetch_depth,
        },
    ));

    let _ = scfg;
    cases
}

#[test]
fn positive_corpus_trips_every_rule_at_the_exact_site() {
    let mcfg = MachineConfig::t3d(4);
    let scfg = SplitcConfig::default();
    let cases = minimal_cases(&mcfg, &scfg);
    let mut covered: Vec<Rule> = Vec::new();
    for (prog, site) in &cases {
        let r = lint(prog, &mcfg, &scfg);
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.rule == site.rule)
            .unwrap_or_else(|| panic!("{} did not fire:\n{}", site.rule, r.render_table()));
        assert_eq!(
            (d.pe, d.target, d.addr, d.op_idx),
            (site.pe, site.target, site.addr, site.op_idx),
            "{} fired at the wrong site:\n{}",
            site.rule,
            r.render_table()
        );
        covered.push(site.rule);
    }
    covered.sort_unstable();
    covered.dedup();
    assert_eq!(
        covered,
        Rule::ALL.to_vec(),
        "corpus must cover every rule ID"
    );
}

/// Rule IDs never change: tooling (CI artifacts, suppression lists)
/// keys on them.
#[test]
fn rule_ids_are_stable() {
    let ids: Vec<&str> = Rule::ALL.iter().map(|r| r.id()).collect();
    assert_eq!(
        ids,
        [
            "T3D-H001", "T3D-H002", "T3D-H003", "T3D-H004", "T3D-H005", "T3D-H006", "T3D-H007",
            "T3D-P001", "T3D-P002", "T3D-P003", "T3D-P004", "T3D-P005",
        ]
    );
}

#[test]
fn em3d_versions_lint_hazard_free_with_pinned_advisories() {
    // Must match `run_version_inner`'s machine construction so the
    // advisory thresholds (and H007 bounds) see the real parameters.
    let nprocs = 4;
    let params = Em3dParams::tiny(30.0);
    let mcfg = MachineConfig::t3d_with_mem(nprocs, 4 * 1024 * 1024);
    let scfg = SplitcConfig::t3d();
    // (version, advisory profile as (rule id, total count) pairs).
    let expected: [(Version, &[(&str, u64)]); 7] = [
        (Version::Simple, &[("T3D-P001", 16)]),
        (Version::Bundle, &[("T3D-P001", 16)]),
        (Version::Unroll, &[("T3D-P001", 16)]),
        (Version::Get, &[("T3D-P005", 36)]),
        (Version::Put, &[]),
        (Version::Bulk, &[]),
        (Version::StoreSync, &[]),
    ];
    for (v, profile) in expected {
        let (_, streams) = run_version_recorded(PhaseDriver::Seq, nprocs, params, v);
        let r = lint(&LintProgram::from_recorded(streams), &mcfg, &scfg);
        assert!(
            r.is_hazard_free(),
            "em3d.{} has static hazards:\n{}",
            v.label(),
            r.render_table()
        );
        let counts: Vec<(&str, u64)> = r.counts_by_rule().into_iter().collect();
        assert_eq!(
            counts,
            profile,
            "em3d.{} advisory profile changed:\n{}",
            v.label(),
            r.render_table()
        );
    }
}

#[test]
fn fuzz_corpus_lints_clean_of_correctness_rules() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/crates/fuzz/corpus/seeds.txt");
    let text = std::fs::read_to_string(path).expect("checked-in corpus");
    let mut programs = 0usize;
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let master = t3d_fuzz::parse_seed(it.next().expect("seed"));
        let count: usize = it.next().expect("count").parse().expect("count");
        for case in 0..count {
            let seed = case_seed(master, case);
            let r = lint_case(&program_for_seed(seed), 0x100);
            assert!(
                r.is_hazard_free(),
                "corpus seed {seed:#x} has static hazards:\n{}",
                r.render_table()
            );
            programs += 1;
        }
    }
    assert!(programs >= 50, "corpus shrank to {programs} programs");
}
