//! Integration tests for the semantic hazards the paper documents —
//! each one reproduced end-to-end through the public crate APIs.

use splitc::{AnnexPolicy, GlobalPtr, SplitC, SplitcConfig};
use t3d_machine::{Machine, MachineConfig};
use t3d_shell::{AnnexEntry, FuncCode, PopError};

/// Section 3.4: with multiple annex registers naming one processor, the
/// write buffer admits stale reads through synonyms.
#[test]
fn synonym_stale_read_through_unsafe_multi_policy() {
    let mut cfg = SplitcConfig::t3d();
    cfg.annex_policy = AnnexPolicy::UnsafeMulti;
    let mut sc = SplitC::with_config(MachineConfig::t3d(2), cfg);
    let cell = sc.alloc(8, 8);
    sc.machine().poke8(1, cell, 1);

    // Raw machine sequence mirroring what compiled code would emit under
    // the unsafe policy: store via one register, load via another.
    let m = sc.machine();
    m.annex_set(
        0,
        1,
        AnnexEntry {
            pe: 1,
            func: FuncCode::Uncached,
        },
    );
    m.annex_set(
        0,
        2,
        AnnexEntry {
            pe: 1,
            func: FuncCode::Uncached,
        },
    );
    m.st8(0, m.va(1, cell), 2);
    let through_synonym = m.ld8(0, m.va(2, cell));
    assert_eq!(through_synonym, 1, "stale value read through the synonym");
    // The same-register read forwards correctly.
    assert_eq!(m.ld8(0, m.va(1, cell)), 2);
}

/// Section 3.4 (the repair): the hashed multi-register policy maps each
/// PE to exactly one register, so synonyms never arise.
#[test]
fn hashed_policy_never_creates_synonyms() {
    let mut cfg = SplitcConfig::t3d();
    cfg.annex_policy = AnnexPolicy::HashedMulti;
    let mut sc = SplitC::with_config(MachineConfig::t3d(8), cfg);
    let cell = sc.alloc(64, 8);
    sc.on(0, |ctx| {
        for t in 1..8u32 {
            ctx.write_u64(GlobalPtr::new(t, cell), t as u64);
            let _ = ctx.read_u64(GlobalPtr::new(t, cell));
        }
    });
    for t in 1..8u32 {
        assert!(
            sc.machine().node(0).annex.synonyms_of(t).len() <= 1,
            "PE {t} must occupy at most one annex register"
        );
    }
}

/// Section 4.3: the remote-write status bit cannot see writes still in
/// the write buffer, so polling without a fence is wrong.
#[test]
fn status_bit_trap_requires_fence_before_poll() {
    let mut m = Machine::new(MachineConfig::t3d(2));
    m.annex_set(
        0,
        1,
        AnnexEntry {
            pe: 1,
            func: FuncCode::Uncached,
        },
    );
    m.st8(0, m.va(1, 0x100), 7);
    assert!(
        m.poll_status(0),
        "WRONG but faithful: the buffered write is invisible"
    );
    m.memory_barrier(0);
    assert!(
        !m.poll_status(0),
        "after the fence the in-flight write is visible"
    );
    m.wait_write_acks(0);
    assert!(m.poll_status(0));
    assert_eq!(m.peek8(1, 0x100), 7);
}

/// Section 4.4: cached remote reads are incoherent; the compiler must
/// flush to see updates.
#[test]
fn cached_remote_reads_are_incoherent_until_flushed() {
    let mut sc = SplitC::new(MachineConfig::t3d(2));
    let cell = sc.alloc(8, 8);
    sc.machine().poke8(1, cell, 10);
    sc.on(0, |ctx| {
        assert_eq!(ctx.read_u64_cached(GlobalPtr::new(1, cell)), 10);
    });
    // The owner updates through its own (blocking) write.
    sc.on(1, |ctx| ctx.write_u64(GlobalPtr::new(1, cell), 11));
    sc.on(0, |ctx| {
        assert_eq!(
            ctx.read_u64_cached(GlobalPtr::new(1, cell)),
            10,
            "stale line survives the owner's update"
        );
        ctx.flush_remote_line(GlobalPtr::new(1, cell));
        assert_eq!(ctx.read_u64_cached(GlobalPtr::new(1, cell)), 11);
        // The uncached flavour never had the problem.
        ctx.flush_remote_line(GlobalPtr::new(1, cell));
        assert_eq!(ctx.read_u64(GlobalPtr::new(1, cell)), 11);
    });
}

/// Section 4.4: incoming remote writes flush the owner's cache line
/// (cache-invalidate mode), keeping the owner's reads coherent.
#[test]
fn remote_writes_invalidate_owner_cache() {
    let mut sc = SplitC::new(MachineConfig::t3d(2));
    let cell = sc.alloc(8, 8);
    sc.on(1, |ctx| {
        let pe = ctx.pe();
        ctx.machine().st8(pe, cell, 1);
        ctx.machine().memory_barrier(pe);
        assert_eq!(ctx.machine().ld8(pe, cell), 1, "line now cached locally");
    });
    sc.on(0, |ctx| ctx.write_u64(GlobalPtr::new(1, cell), 2));
    sc.on(1, |ctx| {
        let pe = ctx.pe();
        assert_eq!(
            ctx.machine().ld8(pe, cell),
            2,
            "owner sees the remote write"
        );
    });
}

/// Section 4.5: concurrent naive byte writes to one word clobber; the
/// AM-based byte write does not.
#[test]
fn byte_write_clobber_and_repair() {
    // Clobber: interleaved read-modify-writes from two nodes.
    let mut sc = SplitC::new(MachineConfig::t3d(4));
    let word = sc.alloc(8, 8);
    let w1 = sc.on(1, |ctx| {
        let w = ctx.read_u64(GlobalPtr::new(0, word));
        (w & !0xFF) | 0xAA
    });
    let w2 = sc.on(2, |ctx| {
        let w = ctx.read_u64(GlobalPtr::new(0, word));
        (w & !0xFF00) | 0xBB00
    });
    sc.on(1, |ctx| ctx.write_u64(GlobalPtr::new(0, word), w1));
    sc.on(2, |ctx| ctx.write_u64(GlobalPtr::new(0, word), w2));
    let clobbered = sc.machine().peek8(0, word);
    assert_eq!(clobbered, 0xBB00, "PE 1's byte was lost");

    // Repair: the same two updates through the AM-equivalent queue.
    let mut sc = SplitC::new(MachineConfig::t3d(4));
    let word = sc.alloc(8, 8);
    sc.on(1, |ctx| ctx.byte_write(GlobalPtr::new(0, word), 0xAA));
    sc.on(2, |ctx| ctx.byte_write(GlobalPtr::new(0, word + 1), 0xBB));
    sc.barrier();
    assert_eq!(sc.machine().peek8(0, word), 0xBBAA, "both bytes survive");
}

/// Section 4.5 (global-local consistency): a read through a local
/// pointer can overtake an earlier local write, and another processor
/// can observe the reordering.
#[test]
fn local_write_buffered_values_invisible_to_remote_readers() {
    let mut m = Machine::new(MachineConfig::t3d(2));
    // PE 1 writes locally (sits in its write buffer).
    m.st8(1, 0x200, 99);
    // PE 0 reads it remotely right away: the memory controller path does
    // not see PE 1's write buffer.
    m.annex_set(
        0,
        1,
        AnnexEntry {
            pe: 1,
            func: FuncCode::Uncached,
        },
    );
    assert_eq!(
        m.ld8(0, m.va(1, 0x200)),
        0,
        "remote read bypassed the buffer"
    );
    // After PE 1 fences, the value is visible.
    m.memory_barrier(1);
    assert_eq!(m.ld8(0, m.va(1, 0x200)), 99);
}

/// Section 5.2: popping the prefetch queue before the fetch has left the
/// processor is invalid; fewer than 4 outstanding fetches require a
/// memory barrier.
#[test]
fn prefetch_pop_hazard_below_four_outstanding() {
    let mut m = Machine::new(MachineConfig::t3d(2));
    m.annex_set(
        0,
        1,
        AnnexEntry {
            pe: 1,
            func: FuncCode::Uncached,
        },
    );
    for i in 0..3u64 {
        m.fetch(0, m.va(1, i * 8));
    }
    assert_eq!(m.pop_prefetch(0), Err(PopError::NotDeparted));
    // The fourth fetch pushes the group out...
    m.fetch(0, m.va(1, 24));
    assert!(m.pop_prefetch(0).is_ok());
    // ...or a memory barrier does.
    m.fetch(0, m.va(1, 32)); // fifth fetch: pending departure again
    for _ in 0..3 {
        m.pop_prefetch(0).expect("departed pops succeed");
    }
    assert_eq!(m.pop_prefetch(0), Err(PopError::NotDeparted));
    m.memory_barrier(0);
    assert!(m.pop_prefetch(0).is_ok());
    assert_eq!(m.prefetch_outstanding(0), 0);
}
