//! Property-based tests on the core data structures and on whole-machine
//! functional correctness (random operation sequences checked against
//! flat reference models).
//!
//! The cases are drawn from the in-repo deterministic PRNG rather than
//! an external property-testing framework: each test runs its seeded
//! cases through [`Rng::cases`], so failures are reproducible by seed
//! and the value stream matches the hand-written loop this replaces.

use splitc::{GlobalPtr, SpreadArray};
use t3d_machine::{Machine, MachineConfig};
use t3d_memsys::{MemConfig, MemPort};
use t3d_prng::Rng;
use t3d_shell::{AnnexEntry, FuncCode};
use t3d_torus::{Torus, TorusConfig};

/// Global pointers round-trip through their packed representation.
#[test]
fn gptr_pack_roundtrip() {
    Rng::cases(0x5001, 512, |_, rng| {
        let pe = rng.gen_range(0u32..u16::MAX as u32 + 1);
        let addr = rng.gen_range(0u64..1 << 48);
        let p = GlobalPtr::new(pe, addr);
        assert_eq!(p.pe(), pe);
        assert_eq!(p.addr(), addr);
        assert_eq!(GlobalPtr::from_bits(p.bits()), p);
    });
}

/// Local arithmetic commutes with extraction.
#[test]
fn gptr_local_arithmetic() {
    Rng::cases(0x5002, 512, |_, rng| {
        let pe = rng.gen_range(0u32..256);
        let addr = rng.gen_range(0u64..1 << 40);
        let d = rng.gen_range(0u64..1 << 20);
        let p = GlobalPtr::new(pe, addr);
        assert_eq!(p.local_add(d).addr(), addr + d);
        assert_eq!(p.local_add(d).pe(), pe);
        assert_eq!(p.local_add(d).local_sub(d), p);
    });
}

/// Global arithmetic is associative in step counts and inverted by
/// global_index.
#[test]
fn gptr_global_arithmetic() {
    Rng::cases(0x5003, 512, |_, rng| {
        let nprocs = rng.gen_range(1u32..64);
        let a = rng.gen_range(0u64..500);
        let b = rng.gen_range(0u64..500);
        let base = GlobalPtr::new(0, 0x1000);
        let one = base.global_add(a + b, 8, nprocs);
        let two = base.global_add(a, 8, nprocs).global_add(b, 8, nprocs);
        assert_eq!(one, two, "global_add composes");
        assert_eq!(one.global_index(0x1000, 8, nprocs), a + b);
    });
}

/// Torus hop counts form a metric: symmetric, zero iff equal, and
/// obeying the triangle inequality.
#[test]
fn torus_hops_is_a_metric() {
    Rng::cases(0x5004, 256, |_, rng| {
        let dims = (
            rng.gen_range(1u32..6),
            rng.gen_range(1u32..6),
            rng.gen_range(1u32..6),
        );
        let seed = rng.next_u64();
        let t = Torus::new(TorusConfig { dims, hop_cy: 2.5 });
        let n = t.nodes();
        let a = (seed % n as u64) as u32;
        let b = ((seed >> 16) % n as u64) as u32;
        let c = ((seed >> 32) % n as u64) as u32;
        assert_eq!(t.hops(a, b), t.hops(b, a));
        assert_eq!(t.hops(a, a), 0);
        if a != b {
            assert!(t.hops(a, b) > 0);
        }
        assert!(t.hops(a, c) <= t.hops(a, b) + t.hops(b, c));
    });
}

/// Dimension-order routes have exactly `hops` links and stay in bounds.
#[test]
fn torus_route_consistency() {
    Rng::cases(0x5005, 256, |_, rng| {
        let dims = (
            rng.gen_range(1u32..5),
            rng.gen_range(1u32..5),
            rng.gen_range(1u32..5),
        );
        let seed = rng.next_u64();
        let t = Torus::new(TorusConfig { dims, hop_cy: 2.5 });
        let n = t.nodes();
        let a = (seed % n as u64) as u32;
        let b = ((seed >> 20) % n as u64) as u32;
        let route = t.route(a, b);
        assert_eq!(route.len() as u32, t.hops(a, b) + 1);
        for c in route {
            assert!(c.x < dims.0 && c.y < dims.1 && c.z < dims.2);
        }
    });
}

/// Spread arrays partition ownership completely and disjointly.
#[test]
fn spread_partition() {
    Rng::cases(0x5006, 64, |_, rng| {
        let len = rng.gen_range(1u64..2000);
        let nprocs = rng.gen_range(1u32..32);
        let a = SpreadArray::new(0x100, 8, len, nprocs);
        let mut owned = vec![0u32; len as usize];
        for pe in 0..nprocs {
            for i in a.owned_by(pe) {
                owned[i as usize] += 1;
                assert_eq!(a.gptr(i).pe(), pe);
            }
        }
        assert!(owned.iter().all(|&c| c == 1));
    });
}

/// The memory port is functionally a flat byte array under any sequence
/// of local reads, writes and barriers — caches, the write buffer and
/// forwarding must never change values, only timing.
#[test]
fn memport_matches_flat_memory() {
    Rng::cases(0x5007, 48, |_, rng| {
        let n_ops = rng.gen_range(1usize..200);
        let mut port = MemPort::new(MemConfig::t3d());
        let mut reference = vec![0u8; 2048 + 8];
        let mut now = 0u64;
        for _ in 0..n_ops {
            let op = rng.gen_range(0u8..3);
            let addr = rng.gen_range(0u64..2048) & !7; // aligned words
            let val = rng.next_u64();
            match op {
                0 => {
                    now += port.write(now, addr, &val.to_le_bytes());
                    reference[addr as usize..addr as usize + 8].copy_from_slice(&val.to_le_bytes());
                }
                1 => {
                    let mut buf = [0u8; 8];
                    now += port.read(now, addr, &mut buf);
                    assert_eq!(
                        &buf,
                        &reference[addr as usize..addr as usize + 8],
                        "read at {addr:#x} diverged"
                    );
                }
                _ => {
                    now += port.memory_barrier(now);
                }
            }
        }
        // After a final barrier, raw memory agrees everywhere.
        port.memory_barrier(now);
        let mut buf = vec![0u8; 2048];
        port.peek_mem(0, &mut buf);
        assert_eq!(&buf[..], &reference[..2048]);
    });
}

/// Remote reads and writes between two nodes are functionally a pair of
/// flat arrays, provided each write is fenced+acknowledged before a
/// conflicting read — the discipline Split-C's blocking ops follow.
#[test]
fn machine_remote_ops_match_reference() {
    Rng::cases(0x5008, 24, |_, rng| {
        let n_ops = rng.gen_range(1usize..60);
        let mut m = Machine::new(MachineConfig::t3d(2));
        m.annex_set(
            0,
            1,
            AnnexEntry {
                pe: 1,
                func: FuncCode::Uncached,
            },
        );
        let mut reference = vec![0u64; 512];
        for _ in 0..n_ops {
            let op = rng.gen_range(0u8..2);
            let slot = rng.gen_range(0u64..512);
            let val = rng.next_u64();
            let va = m.va(1, slot * 8);
            match op {
                0 => {
                    m.st8(0, va, val);
                    m.memory_barrier(0);
                    m.wait_write_acks(0);
                    reference[slot as usize] = val;
                }
                _ => {
                    assert_eq!(m.ld8(0, va), reference[slot as usize]);
                }
            }
        }
        for (slot, val) in reference.iter().enumerate() {
            assert_eq!(m.peek8(1, slot as u64 * 8), *val);
        }
    });
}

/// Virtual time is monotone: no operation may move a node's clock
/// backwards.
#[test]
fn clocks_are_monotone() {
    Rng::cases(0x5009, 24, |_, rng| {
        let n_ops = rng.gen_range(1usize..80);
        let mut m = Machine::new(MachineConfig::t3d(2));
        m.annex_set(
            0,
            1,
            AnnexEntry {
                pe: 1,
                func: FuncCode::Uncached,
            },
        );
        let mut last = m.clock(0);
        for _ in 0..n_ops {
            let op = rng.gen_range(0u8..6);
            let slot = rng.gen_range(0u64..256);
            let val = rng.next_u64();
            let off = slot * 8;
            match op {
                0 => m.st8(0, off, val),
                1 => {
                    let _ = m.ld8(0, off);
                }
                2 => m.st8(0, m.va(1, off), val),
                3 => {
                    let _ = m.ld8(0, m.va(1, off));
                }
                4 => m.memory_barrier(0),
                _ => m.wait_write_acks(0),
            }
            let now = m.clock(0);
            assert!(now >= last, "clock went backwards: {last} -> {now}");
            last = now;
        }
    });
}
