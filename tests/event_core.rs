//! Differential micro tests for the event-driven time-advance engine.
//!
//! Each test stimulates exactly one wait class (plus one mixed
//! workload), runs it under both engines, and asserts three things:
//!
//! * **bit-identity** — final clocks, memory fingerprint and the full
//!   per-PE attribution ledgers match the cycle engine's exactly;
//! * **event structure** — the event engine consumed at least the
//!   expected number of typed events (`events_fast_forwarded`), so the
//!   fast path demonstrably ran rather than silently degrading to the
//!   cycle path;
//! * **pinned history** — the cycle totals and FNV fingerprints equal
//!   checked-in constants, so a timing-model change cannot hide behind
//!   the differential (both engines drifting together still fails).

use t3d_machine::{EngineMode, Machine, MachineConfig, PerfMode};
use t3d_shell::blt::BltDirection;
use t3d_shell::{AnnexEntry, FuncCode};

/// Node memory for the micro machines: traffic stays in the first
/// megabyte, checksummed below.
const NODE_MEM: usize = 2 << 20;
const SNAP_BYTES: u64 = 1 << 20;

fn machine(pes: u32, engine: EngineMode) -> Machine {
    let mut cfg = MachineConfig::t3d_with_mem(pes, NODE_MEM);
    cfg.engine = engine;
    let mut m = Machine::new(cfg);
    m.set_perf_mode(PerfMode::Counters);
    m
}

fn aim(m: &mut Machine, pe: usize, target: u32) -> u64 {
    m.annex_set(
        pe,
        1,
        AnnexEntry {
            pe: target,
            func: FuncCode::Uncached,
        },
    );
    m.va(1, 0)
}

/// Runs `workload` under both engines and asserts bit-identity of
/// clocks, state fingerprint and attribution; returns the event-engine
/// machine (for event-structure assertions) plus the shared
/// `(clock-of-PE0, fnv)` pair for pinning.
fn differential(pes: u32, workload: impl Fn(&mut Machine)) -> (Machine, u64, u64) {
    let mut cycle = machine(pes, EngineMode::Cycle);
    workload(&mut cycle);
    let mut event = machine(pes, EngineMode::Event);
    workload(&mut event);
    for pe in 0..pes as usize {
        assert_eq!(
            cycle.clock(pe),
            event.clock(pe),
            "PE{pe}: engines land on different clocks"
        );
        assert_eq!(
            cycle.event_stats(pe).events_fast_forwarded,
            0,
            "PE{pe}: the cycle engine must not consume events"
        );
    }
    let fnv_c = cycle.snapshot_region(0, SNAP_BYTES).fnv64();
    let fnv_e = event.snapshot_region(0, SNAP_BYTES).fnv64();
    assert_eq!(fnv_c, fnv_e, "state fingerprints diverge");
    assert_eq!(cycle.perf(), event.perf(), "attribution ledgers diverge");
    let clock0 = event.clock(0);
    (event, clock0, fnv_e)
}

/// Sum of `events_fast_forwarded` over all PEs of the event-engine run.
fn events_consumed(m: &Machine) -> u64 {
    (0..m.nodes())
        .map(|pe| m.event_stats(pe).events_fast_forwarded)
        .sum()
}

#[test]
fn barrier_only_fast_forwards_every_episode() {
    let (m, clock0, fnv) = differential(4, |m| {
        for round in 0..8u64 {
            for pe in 0..4usize {
                m.advance(pe, 50 + (pe as u64) * 37 + round * 11);
            }
            m.barrier_all();
        }
    });
    // One BarrierSettle per PE per episode: 8 rounds x 4 PEs.
    assert!(
        events_consumed(&m) >= 32,
        "only {} events consumed",
        events_consumed(&m)
    );
    assert_eq!((clock0, fnv), PIN_BARRIER, "pinned history changed");
}

#[test]
fn ack_only_fast_forwards_every_arrival() {
    let (m, clock0, fnv) = differential(2, |m| {
        let base = aim(m, 0, 1);
        for i in 0..16u64 {
            m.st8(0, base + i * 64, i);
        }
        m.memory_barrier(0);
        m.wait_write_acks(0);
    });
    // One ack arrival per store at the status-bit spin, plus whatever
    // write-buffer entries were still pending at the fence (later
    // stores retire earlier entries inline, so only a tail remains).
    assert!(
        events_consumed(&m) >= 17,
        "only {} events consumed",
        events_consumed(&m)
    );
    assert_eq!((clock0, fnv), PIN_ACK, "pinned history changed");
}

#[test]
fn prefetch_only_fast_forwards_every_pop() {
    let (m, clock0, fnv) = differential(2, |m| {
        let base = aim(m, 0, 1);
        for g in 0..4u64 {
            for i in 0..4u64 {
                assert!(m.fetch(0, base + (g * 4 + i) * 64), "queue full");
            }
            m.memory_barrier(0);
            for _ in 0..4 {
                m.pop_prefetch(0).expect("fetched values must pop");
            }
        }
    });
    // At least the first pop of each group waits on a PrefetchArrival.
    assert!(
        events_consumed(&m) >= 4,
        "only {} events consumed",
        events_consumed(&m)
    );
    assert_eq!((clock0, fnv), PIN_PREFETCH, "pinned history changed");
}

#[test]
fn blt_only_fast_forwards_the_completion() {
    let (m, clock0, fnv) = differential(2, |m| {
        for i in 0..64u64 {
            m.poke_mem(0, 0x8000 + i * 8, &i.to_le_bytes());
        }
        let h = m.blt_start(0, BltDirection::Write, 0x8000, 1, 0x8000, 512);
        m.blt_wait(0, h);
    });
    // The issuing PE waits on one BltComplete.
    assert!(
        events_consumed(&m) >= 1,
        "only {} events consumed",
        events_consumed(&m)
    );
    assert_eq!((clock0, fnv), PIN_BLT, "pinned history changed");
}

#[test]
fn mixed_workload_stays_bit_identical() {
    let (m, clock0, fnv) = differential(4, |m| {
        let base = aim(m, 0, 1);
        // Pipelined puts + fence + ack wait...
        for i in 0..8u64 {
            m.st8(0, base + i * 64, i);
        }
        m.memory_barrier(0);
        m.wait_write_acks(0);
        // ...a prefetch group...
        for i in 0..4u64 {
            assert!(m.fetch(0, base + 0x1000 + i * 64), "queue full");
        }
        m.memory_barrier(0);
        for _ in 0..4 {
            m.pop_prefetch(0).expect("fetched values must pop");
        }
        // ...a BLT to another node...
        let h = m.blt_start(0, BltDirection::Write, 0x4000, 2, 0x4000, 256);
        m.blt_wait(0, h);
        // ...and two skewed barriers.
        for pe in 0..4usize {
            m.advance(pe, 100 + pe as u64 * 53);
        }
        m.barrier_all();
        m.barrier_all();
    });
    // Eight ack arrivals, at least one write-buffer tail retirement,
    // one prefetch arrival, one BLT completion, and one barrier settle
    // per PE per episode.
    assert!(
        events_consumed(&m) >= 8 + 1 + 1 + 1 + 8,
        "only {} events consumed",
        events_consumed(&m)
    );
    assert_eq!((clock0, fnv), PIN_MIXED, "pinned history changed");
}

#[test]
fn cycle_skips_match_clock_motion() {
    // The cycles_fast_forwarded counter must equal exactly the clock
    // motion the skips produced: re-run the ack scenario and check the
    // skipped cycles never exceed the elapsed virtual time.
    let mut m = machine(2, EngineMode::Event);
    let base = aim(&mut m, 0, 1);
    for i in 0..16u64 {
        m.st8(0, base + i * 64, i);
    }
    m.memory_barrier(0);
    m.wait_write_acks(0);
    let stats = m.event_stats(0);
    assert!(stats.events_fast_forwarded > 0);
    assert!(
        stats.cycles_fast_forwarded <= m.clock(0),
        "skipped {} of {} elapsed cycles",
        stats.cycles_fast_forwarded,
        m.clock(0)
    );
    assert!(
        stats.cycles_fast_forwarded > 0,
        "an ack-dominated workload must skip quiescent cycles"
    );
}

#[test]
fn perturbing_an_event_diverges_the_clocks() {
    // The differential harness's teeth: skewing one event's due-time
    // must change the final clocks, or the oracle could never catch a
    // wrong event schedule. (Under the cycle engine the perturbation is
    // a no-op — there is no queue to skew.)
    let run = |engine: EngineMode, skew: u64| {
        let mut m = machine(4, engine);
        for pe in 0..4usize {
            m.advance(pe, 100 + pe as u64 * 53);
        }
        if skew > 0 {
            m.perturb_next_event(0, skew);
        }
        m.barrier_all();
        m.clock(0)
    };
    let clean = run(EngineMode::Event, 0);
    let skewed = run(EngineMode::Event, 1 << 20);
    assert_ne!(clean, skewed, "a skewed settle must move the clock");
    assert_eq!(
        run(EngineMode::Cycle, 1 << 20),
        clean,
        "under the cycle engine the skew hook is inert"
    );
}

// Pinned (clock-of-PE0, FNV-of-first-MB) histories. The assertion
// failure message prints the fresh pair; update these constants only
// when the timing model changes on purpose.
const PIN_BARRIER: (u64, u64) = (2108, 4812219015355261989);
const PIN_ACK: (u64, u64) = (476, 8463033929407022817);
const PIN_PREFETCH: (u64, u64) = (813, 16839572663591385416);
const PIN_BLT: (u64, u64) = (28024, 3489526102737805157);
const PIN_MIXED: (u64, u64) = (28269, 9544468633610242897);
