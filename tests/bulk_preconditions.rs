//! Negative tests pinning the bulk-transfer precondition asserts: the
//! exact panic messages are part of the API surface (users debug
//! against them), so a reworded or relocated assert fails here.

use splitc::{GlobalPtr, SplitC};
use t3d_machine::{Machine, MachineConfig};
use t3d_shell::blt::BltDirection;

fn runtime() -> (SplitC, u64) {
    let mut sc = SplitC::new(MachineConfig::t3d(2));
    let base = sc.alloc(64 * 8, 8);
    (sc, base)
}

#[test]
#[should_panic(expected = "bulk transfers move whole words")]
fn bulk_read_rejects_zero_length() {
    let (mut sc, base) = runtime();
    sc.on(0, |ctx| ctx.bulk_read(base, GlobalPtr::new(1, base), 0));
}

#[test]
#[should_panic(expected = "bulk transfers move whole words")]
fn bulk_read_rejects_misaligned_length() {
    let (mut sc, base) = runtime();
    sc.on(0, |ctx| ctx.bulk_read(base, GlobalPtr::new(1, base), 12));
}

#[test]
#[should_panic(expected = "bulk transfers move whole words")]
fn bulk_write_rejects_misaligned_length() {
    let (mut sc, base) = runtime();
    sc.on(0, |ctx| ctx.bulk_write(GlobalPtr::new(1, base), base, 7));
}

#[test]
#[should_panic(expected = "bulk transfers move whole words")]
fn bulk_get_rejects_zero_length() {
    let (mut sc, base) = runtime();
    sc.on(0, |ctx| ctx.bulk_get(base, GlobalPtr::new(1, base), 0));
}

#[test]
#[should_panic(expected = "bulk transfers move whole words")]
fn bulk_put_rejects_misaligned_length() {
    let (mut sc, base) = runtime();
    sc.on(0, |ctx| ctx.bulk_put(GlobalPtr::new(1, base), base, 4));
}

#[test]
#[should_panic(expected = "elements are whole words")]
fn strided_read_rejects_misaligned_elements() {
    let (mut sc, base) = runtime();
    sc.on(0, |ctx| {
        ctx.bulk_read_strided(base, GlobalPtr::new(1, base), 2, 12, 16)
    });
}

#[test]
#[should_panic(expected = "strided read must move data")]
fn strided_read_rejects_zero_count() {
    let (mut sc, base) = runtime();
    sc.on(0, |ctx| {
        ctx.bulk_read_strided(base, GlobalPtr::new(1, base), 0, 8, 16)
    });
}

#[test]
#[should_panic(expected = "strided write must move data")]
fn strided_write_rejects_zero_count() {
    let (mut sc, base) = runtime();
    sc.on(0, |ctx| {
        ctx.bulk_write_strided(GlobalPtr::new(1, base), base, 0, 8, 16)
    });
}

#[test]
#[should_panic(expected = "stride must not overlap elements")]
fn strided_read_rejects_zero_stride() {
    let (mut sc, base) = runtime();
    sc.on(0, |ctx| {
        ctx.bulk_read_strided(base, GlobalPtr::new(1, base), 2, 8, 0)
    });
}

#[test]
#[should_panic(expected = "stride must not overlap elements")]
fn strided_write_rejects_overlapping_windows() {
    let (mut sc, base) = runtime();
    sc.on(0, |ctx| {
        ctx.bulk_write_strided(GlobalPtr::new(1, base), base, 4, 16, 8)
    });
}

/// The machine-level BLT guards the same precondition independently of
/// the Split-C wrappers.
#[test]
#[should_panic(expected = "stride must not overlap elements")]
fn machine_strided_blt_rejects_overlapping_windows() {
    let mut m = Machine::new(MachineConfig::t3d(2));
    m.blt_start_strided(0, BltDirection::Read, 0, 1, 0, 4, 16, 8);
}

#[test]
#[should_panic(expected = "strided BLT must move data")]
fn machine_strided_blt_rejects_zero_count() {
    let mut m = Machine::new(MachineConfig::t3d(2));
    m.blt_start_strided(0, BltDirection::Read, 0, 1, 0, 0, 8, 8);
}
