//! Second property suite: functional models of individual mechanisms
//! against simple references, and whole-machine determinism.
//!
//! Cases run through [`Rng::cases`] (fixed seeds, fixed case counts) so
//! every failure is reproducible and the value stream matches the
//! hand-written loop this replaces.

use em3d::{Em3dGraph, Em3dParams};
use splitc::{AnnexPolicy, GlobalPtr, SplitC, SplitcConfig};
use std::collections::HashMap;
use t3d_machine::{Machine, MachineConfig};
use t3d_memsys::{L1Cache, MemConfig};
use t3d_prng::Rng;
use t3d_shell::{AnnexEntry, FuncCode, PrefetchUnit, ShellConfig};

/// The L1 cache is functionally a map from line address to bytes:
/// fills and updates must never corrupt data, and lookups must return
/// exactly what a reference map holds.
#[test]
fn l1_matches_reference_map() {
    Rng::cases(0x6001, 48, |_, rng| {
        let n_ops = rng.gen_range(1usize..300);
        let mut l1 = L1Cache::new(MemConfig::t3d().l1);
        // Reference: line base -> 32 bytes, for lines currently resident.
        let mut reference: HashMap<u64, [u8; 32]> = HashMap::new();
        let index_of = |line: u64| (line / 32) % 256;
        for _ in 0..n_ops {
            let op = rng.gen_range(0u8..4);
            let line_idx = rng.gen_range(0u64..64);
            let val = rng.gen_range(0u32..256) as u8;
            let line_pa = line_idx * 32;
            match op {
                0 => {
                    // Fill: evicts whatever shares the index.
                    l1.fill(line_pa, &[val; 32]);
                    reference.retain(|&k, _| index_of(k) != index_of(line_pa));
                    reference.insert(line_pa, [val; 32]);
                }
                1 => {
                    // Update one word: hits only if resident.
                    let hit = l1.update(line_pa + 8, &[val; 8]);
                    assert_eq!(hit, reference.contains_key(&line_pa));
                    if let Some(data) = reference.get_mut(&line_pa) {
                        data[8..16].copy_from_slice(&[val; 8]);
                    }
                }
                2 => {
                    l1.invalidate(line_pa);
                    reference.remove(&line_pa);
                }
                _ => match (l1.lookup(line_pa), reference.get(&line_pa)) {
                    (Some(got), Some(want)) => assert_eq!(got, want.as_slice()),
                    (None, None) => {}
                    (got, want) => panic!(
                        "presence mismatch at {line_pa:#x}: sim {:?} ref {:?}",
                        got.is_some(),
                        want.is_some()
                    ),
                },
            }
        }
    });
}

/// The prefetch queue is strictly FIFO under any interleaving of
/// issues, fences and pops, and never yields undeparted data.
#[test]
fn prefetch_queue_is_fifo() {
    Rng::cases(0x6002, 64, |_, rng| {
        let n_ops = rng.gen_range(1usize..200);
        let mut pf = PrefetchUnit::new(&ShellConfig::t3d());
        let mut now = 0u64;
        let mut next_issued = 0u64;
        let mut next_expected = 0u64;
        for _ in 0..n_ops {
            match rng.gen_range(0u8..4) {
                0 | 1 => {
                    if pf.issue(now, next_issued, 80).is_some() {
                        next_issued += 1;
                        now += 4;
                    }
                }
                2 => {
                    pf.note_memory_barrier(now);
                    now += 4;
                }
                _ => {
                    if let Ok((v, cost)) = pf.pop(now) {
                        assert_eq!(v, next_expected, "FIFO order violated");
                        next_expected += 1;
                        now += cost;
                    }
                }
            }
        }
        // Drain: everything issued must come out, in order.
        pf.note_memory_barrier(now);
        while let Ok((v, cost)) = pf.pop(now) {
            assert_eq!(v, next_expected);
            next_expected += 1;
            now += cost;
        }
        assert_eq!(next_expected, next_issued, "no prefetch lost");
    });
}

/// Safe annex policies never leave two registers naming one PE, no
/// matter the access pattern.
#[test]
fn safe_annex_policies_are_synonym_free() {
    Rng::cases(0x6003, 48, |case, rng| {
        let n_targets = rng.gen_range(1usize..80);
        let targets: Vec<u32> = (0..n_targets).map(|_| rng.gen_range(1u32..8)).collect();
        let policy = match case % 3 {
            0 => AnnexPolicy::SingleRegister,
            1 => AnnexPolicy::SingleRegisterCached,
            _ => AnnexPolicy::HashedMulti,
        };
        let mut cfg = SplitcConfig::t3d();
        cfg.annex_policy = policy;
        let mut sc = SplitC::with_config(MachineConfig::t3d(8), cfg);
        let buf = sc.alloc(8, 8);
        sc.on(0, |ctx| {
            for &t in &targets {
                let _ = ctx.read_u64(GlobalPtr::new(t, buf));
            }
        });
        for pe in 1..8 {
            assert!(
                sc.machine().node(0).annex.synonyms_of(pe).len() <= 1,
                "{policy:?} created a synonym for PE {pe}"
            );
        }
    });
}

/// The whole machine is deterministic: the same op sequence twice gives
/// bit-identical clocks and memory.
#[test]
fn machine_is_deterministic() {
    Rng::cases(0x6004, 16, |_, rng| {
        let n_ops = rng.gen_range(1usize..60);
        let ops: Vec<(u8, u64, u64)> = (0..n_ops)
            .map(|_| {
                (
                    rng.gen_range(0u8..7),
                    rng.gen_range(0u64..128),
                    rng.next_u64(),
                )
            })
            .collect();
        let run = |ops: &[(u8, u64, u64)]| -> (Vec<u64>, Vec<u64>) {
            let mut m = Machine::new(MachineConfig::t3d(4));
            for pe in 0..4usize {
                m.annex_set(
                    pe,
                    1,
                    AnnexEntry {
                        pe: ((pe as u32) + 1) % 4,
                        func: FuncCode::Uncached,
                    },
                );
            }
            for &(op, slot, val) in ops {
                let pe = (val % 4) as usize;
                let off = slot * 8;
                match op {
                    0 => m.st8(pe, off, val),
                    1 => {
                        let _ = m.ld8(pe, off);
                    }
                    2 => m.st8(pe, m.va(1, off), val),
                    3 => {
                        let _ = m.ld8(pe, m.va(1, off));
                    }
                    4 => m.memory_barrier(pe),
                    5 => {
                        let _ = m.fetch_inc(pe, (pe + 1) % 4, 0);
                    }
                    _ => m.barrier_all(),
                }
            }
            let clocks = (0..4).map(|pe| m.clock(pe)).collect();
            let mems = (0..4)
                .map(|pe| {
                    // Hash the first 1 KB of each node's memory.
                    let mut buf = vec![0u8; 1024];
                    m.peek_mem(pe, 0, &mut buf);
                    buf.iter()
                        .fold(0u64, |h, &b| h.wrapping_mul(31).wrapping_add(b as u64))
                })
                .collect();
            (clocks, mems)
        };
        let a = run(&ops);
        let b = run(&ops);
        assert_eq!(a, b);
    });
}

/// EM3D graph generation respects its own contract for any parameters:
/// endpoints in range, remote fraction tracking the request.
#[test]
fn em3d_graphs_are_well_formed() {
    Rng::cases(0x6005, 32, |case, rng| {
        let nodes_per_pe = rng.gen_range(4usize..60);
        let degree = rng.gen_range(1usize..12);
        let pct: u8 = match case % 4 {
            0 => 0,
            1 => 100,
            _ => rng.gen_range(0u32..101) as u8,
        };
        let nprocs = rng.gen_range(2u32..12);
        let seed = rng.next_u64();
        let params = Em3dParams {
            nodes_per_pe,
            degree,
            pct_remote: pct as f64,
            steps: 1,
            seed,
        };
        let g = Em3dGraph::generate(params, nprocs);
        for (p, nodes) in g.e_deps.iter().enumerate() {
            assert_eq!(nodes.len(), nodes_per_pe);
            for deps in nodes {
                assert_eq!(deps.len(), degree);
                for ep in deps {
                    assert!(ep.pe < nprocs);
                    assert!((ep.idx as usize) < nodes_per_pe);
                    if pct == 0 {
                        assert_eq!(ep.pe as usize, p, "0% graphs are fully local");
                    }
                    if pct == 100 {
                        assert_ne!(ep.pe as usize, p, "100% graphs are fully remote");
                    }
                }
            }
        }
        let measured = g.measured_remote_fraction() * 100.0;
        let n_edges = (2 * nprocs as usize * nodes_per_pe * degree) as f64;
        let tolerance = 5.0 + 300.0 / n_edges.sqrt();
        assert!(
            (measured - pct as f64).abs() <= tolerance,
            "requested {pct}%, generated {measured:.1}% (tolerance {tolerance:.1})"
        );
    });
}

/// The write buffer delivers remote entries byte-exactly under any mix
/// of merged and separate stores: a two-node machine where node 0
/// writes random byte spans remotely must leave node 1's memory equal
/// to a flat reference array.
#[test]
fn remote_write_buffer_is_byte_exact() {
    Rng::cases(0x6006, 24, |_, rng| {
        let n_ops = rng.gen_range(1usize..120);
        let mut m = Machine::new(MachineConfig::t3d(2));
        m.annex_set(
            0,
            1,
            AnnexEntry {
                pe: 1,
                func: FuncCode::Uncached,
            },
        );
        let mut reference = vec![0u8; 2048];
        for _ in 0..n_ops {
            let slot = rng.gen_range(0u64..256);
            let len = rng.gen_range(1usize..8).min(8);
            let val = rng.gen_range(0u32..256) as u8;
            // A len-byte store within one 8-byte word (never crossing a
            // 32-byte line).
            let off = slot * 8;
            let bytes = vec![val; len];
            m.st(0, m.va(1, off), &bytes);
            reference[off as usize..off as usize + len].copy_from_slice(&bytes);
        }
        m.memory_barrier(0);
        m.wait_write_acks(0);
        let mut got = vec![0u8; 2048];
        m.peek_mem(1, 0, &mut got);
        assert_eq!(got, reference);
    });
}

/// Split-C reads always return the last fenced write, across any
/// pattern of writers (single-writer-per-slot discipline).
#[test]
fn splitc_rw_linearizes() {
    Rng::cases(0x6007, 24, |_, rng| {
        let n_ops = rng.gen_range(1usize..40);
        let mut sc = SplitC::new(MachineConfig::t3d(4));
        let base = sc.alloc(32 * 8, 8);
        let mut reference = [0u64; 32];
        for _ in 0..n_ops {
            let owner = rng.gen_range(0u64..4);
            let slot = rng.gen_range(0u64..32);
            let val = rng.next_u64();
            let writer = (owner as usize + 1) % 4;
            let gp = GlobalPtr::new((slot % 4) as u32, base + slot * 8);
            sc.on(writer, |ctx| ctx.write_u64(gp, val));
            reference[slot as usize] = val;
            let reader = (owner as usize + 2) % 4;
            let got = sc.on(reader, |ctx| ctx.read_u64(gp));
            assert_eq!(got, reference[slot as usize]);
        }
    });
}
