//! Workspace facade for the CRAY-T3D reproduction.
//!
//! Re-exports the public crates so the examples and integration tests in
//! this repository have a single import root. See the individual crates
//! for documentation:
//!
//! * [`t3d_memsys`] — node memory system (L1, write buffer, DRAM, TLB)
//! * [`t3d_torus`] — 3-D torus interconnect
//! * [`t3d_shell`] — the T3D shell (annex, prefetch, BLT, barriers, ...)
//! * [`t3d_machine`] — the composed virtual-time machine and SPMD driver
//! * [`splitc`] — the Split-C runtime (the paper's compiler perspective)
//! * [`t3d_microbench`] — the micro-benchmark suite and figure harness
//! * [`em3d`] — the EM3D application study
//! * [`t3d_sched`] — multi-tenant job-stream layer (gang scheduler,
//!   torus partitions, saturation sweeps)
//! * [`t3d_lint`] — static analyzer over recorded Split-C op streams
//! * [`t3d_fuzz`] — differential fuzzer (runtime vs flat reference)
//!
//! # Example
//!
//! ```
//! use splitc::{GlobalPtr, SplitC};
//! use t3d_machine::MachineConfig;
//!
//! // An 8-PE T3D; every node stores a word on its right neighbour.
//! let mut sc = SplitC::new(MachineConfig::t3d(8));
//! let cell = sc.alloc(8, 8);
//! sc.run_phase(|ctx| {
//!     let right = (ctx.pe() + 1) % ctx.nodes();
//!     ctx.store_u64(GlobalPtr::new(right as u32, cell), 7);
//! });
//! sc.all_store_sync();
//! assert_eq!(sc.machine().peek8(3, cell), 7);
//! ```

pub use em3d;
pub use splitc;
pub use t3d_fuzz;
pub use t3d_lint;
pub use t3d_machine;
pub use t3d_memsys;
pub use t3d_microbench;
pub use t3d_sched;
pub use t3d_shell;
pub use t3d_torus;
