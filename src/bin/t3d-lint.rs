//! `t3d-lint` — static analysis of Split-C programs for the simulated
//! CRAY-T3D.
//!
//! Lints per-PE op streams — recorded from a real run or lowered from a
//! fuzzer program — for the correctness hazards `t3dsan` detects
//! dynamically (`T3D-H…`) and for machine-parameterized performance
//! advisories (`T3D-P…`): BLT crossovers, DRAM page/bank conflicts,
//! write-buffer thrashing and prefetch-queue misuse.
//!
//! Usage:
//!
//! ```text
//! t3d-lint [--json] [--out FILE] em3d [VERSION|all]
//! t3d-lint [--json] [--out FILE] corpus [SEEDS.txt]
//! t3d-lint [--json] [--out FILE] seed SEED [CASES]
//! t3d-lint [--json] [--out FILE] demo
//! ```
//!
//! `em3d` records each EM3D version's op stream (a real simulated run
//! with op recording on) and lints it — the repository's negative
//! corpus, clean of hazard rules by construction. `corpus` replays the
//! checked-in fuzz corpus (default `crates/fuzz/corpus/seeds.txt`)
//! through the generator and lints every program. `seed` lints the
//! program(s) a single master seed denotes. `demo` lints a small
//! program written to trip both hazard and advisory rules.
//!
//! `--json` prints one JSON document (schema `t3d-lint-v1`) instead of
//! the aligned tables; `--out FILE` writes that document to `FILE` as
//! well. Exit status: 0 when every linted program is hazard-free
//! (advisories allowed), 1 when any hazard rule fired, 2 on usage
//! errors.

use std::process::ExitCode;

use em3d::{run_version_recorded, Em3dParams, Version};
use splitc::{GlobalPtr, ScOp, SplitcConfig};
use t3d_fuzz::{case_seed, lint_case, parse_seed, program_for_seed};
use t3d_lint::{lint, LintProgram, LintReport};
use t3d_machine::{MachineConfig, PhaseDriver};
use t3d_perf::json::Value;

/// One linted program: a display name plus its report.
struct Entry {
    name: String,
    report: LintReport,
}

fn lint_em3d(which: &str) -> Result<Vec<Entry>, String> {
    let versions: Vec<Version> = if which == "all" {
        Version::all().to_vec()
    } else {
        match Version::all()
            .into_iter()
            .find(|v| v.label().eq_ignore_ascii_case(which))
        {
            Some(v) => vec![v],
            None => {
                return Err(format!(
                    "unknown EM3D version {which:?}; expected all or one of {:?}",
                    Version::all().map(|v| v.label())
                ))
            }
        }
    };
    let nprocs = 4;
    let params = Em3dParams::tiny(30.0);
    let mcfg = MachineConfig::t3d_with_mem(nprocs, 4 * 1024 * 1024);
    let scfg = SplitcConfig::t3d();
    Ok(versions
        .into_iter()
        .map(|v| {
            let (_, streams) = run_version_recorded(PhaseDriver::from_env(), nprocs, params, v);
            let report = lint(&LintProgram::from_recorded(streams), &mcfg, &scfg);
            Entry {
                name: format!("em3d.{}", v.label()),
                report,
            }
        })
        .collect())
}

/// Parses the corpus file format: one `master-seed case-count` pair per
/// line, `#` comments and blank lines ignored.
fn corpus_lines(text: &str) -> Result<Vec<(u64, usize)>, String> {
    let mut out = Vec::new();
    for (no, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let (Some(seed), Some(count)) = (it.next(), it.next()) else {
            return Err(format!("line {}: expected `seed count`", no + 1));
        };
        let count: usize = count
            .parse()
            .map_err(|e| format!("line {}: bad count {count:?}: {e}", no + 1))?;
        out.push((parse_seed(seed), count));
    }
    Ok(out)
}

fn lint_corpus(path: &str) -> Result<Vec<Entry>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut entries = Vec::new();
    for (master, count) in corpus_lines(&text)? {
        for case in 0..count {
            let seed = case_seed(master, case);
            entries.push(Entry {
                name: format!("corpus.{seed:#x}"),
                report: lint_case(&program_for_seed(seed), 0x100),
            });
        }
    }
    Ok(entries)
}

fn lint_seed(seed: u64, cases: usize) -> Vec<Entry> {
    (0..cases)
        .map(|case| {
            let s = case_seed(seed, case);
            Entry {
                name: format!("seed.{s:#x}"),
                report: lint_case(&program_for_seed(s), 0x100),
            }
        })
        .collect()
}

/// A two-PE program written to trip H001, H004 and P003: the issuer
/// reads a get's landing slot before the sync, both PEs put to the same
/// remote word, and PE0 scatters sub-word writes across distinct cache
/// lines faster than the four-entry write buffer can retire them.
fn demo_program() -> LintProgram {
    let mut lp = LintProgram::new(2);
    let base = 0x100u64;
    // H001: read the landing slot while the get is still in flight.
    lp.push(
        0,
        ScOp::Get {
            local_off: base,
            src: GlobalPtr::new(1, base + 64),
        },
    );
    lp.push(
        0,
        ScOp::ReadU64 {
            src: GlobalPtr::new(0, base),
        },
    );
    lp.push(0, ScOp::Sync);
    // H004: both PEs put to PE1's word at base+128 in the same phase.
    lp.push(
        0,
        ScOp::Put {
            dst: GlobalPtr::new(1, base + 128),
            value: 1,
        },
    );
    lp.push(
        1,
        ScOp::Put {
            dst: GlobalPtr::new(1, base + 128),
            value: 2,
        },
    );
    lp.push(0, ScOp::Sync);
    lp.push(1, ScOp::Sync);
    // P003: sub-word writes to 8 distinct lines back to back.
    for i in 0..8u64 {
        lp.push(
            1,
            ScOp::ByteWrite {
                dst: GlobalPtr::new(1, base + 512 + i * 256),
                value: i as u8,
            },
        );
    }
    lp.push_all(splitc::RecEvent::Barrier);
    lp
}

fn lint_demo() -> Vec<Entry> {
    let mcfg = MachineConfig::t3d(2);
    let scfg = SplitcConfig::t3d();
    vec![Entry {
        name: "demo".to_string(),
        report: lint(&demo_program(), &mcfg, &scfg),
    }]
}

fn doc(entries: &[Entry]) -> Value {
    let hazards: i64 = entries
        .iter()
        .map(|e| e.report.hazards().len() as i64)
        .sum();
    Value::obj(vec![
        ("schema", Value::Str("t3d-lint-v1".to_string())),
        ("programs", Value::Int(entries.len() as i64)),
        ("hazard_sites", Value::Int(hazards)),
        (
            "entries",
            Value::Arr(
                entries
                    .iter()
                    .map(|e| {
                        Value::obj(vec![
                            ("name", Value::Str(e.name.clone())),
                            ("report", e.report.to_json()),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(i) = args.iter().position(|a| a == flag) {
        args.remove(i);
        true
    } else {
        false
    }
}

fn take_value_flag(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    let Some(i) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    args.remove(i);
    if i >= args.len() {
        return Err(format!("{flag} requires a value"));
    }
    Ok(Some(args.remove(i)))
}

const USAGE: &str = "usage: t3d-lint [--json] [--out FILE] <em3d [VERSION|all] | corpus [SEEDS.txt] | seed SEED [CASES] | demo>";

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json = take_flag(&mut args, "--json");
    let out = match take_value_flag(&mut args, "--out") {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let cmd = args.first().map(String::as_str).unwrap_or("");
    let entries = match cmd {
        "em3d" => lint_em3d(args.get(1).map(String::as_str).unwrap_or("all")),
        "corpus" => lint_corpus(
            args.get(1)
                .map(String::as_str)
                .unwrap_or("crates/fuzz/corpus/seeds.txt"),
        ),
        "seed" => match args.get(1) {
            Some(s) => {
                let cases = match args.get(2).map(|c| c.parse::<usize>()) {
                    None => Ok(1),
                    Some(Ok(n)) if n > 0 => Ok(n),
                    Some(_) => Err("CASES must be a positive integer".to_string()),
                };
                cases.map(|n| lint_seed(parse_seed(s), n))
            }
            None => Err(USAGE.to_string()),
        },
        "demo" => Ok(lint_demo()),
        _ => Err(USAGE.to_string()),
    };
    let entries = match entries {
        Ok(e) => e,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };

    let document = doc(&entries);
    if json {
        println!("{}", document.render_pretty());
    } else {
        for e in &entries {
            // Clean programs print one summary line; findings print the
            // full table.
            if e.report.is_empty() {
                println!("{}: clean ({} events)", e.name, e.report.events_processed);
            } else {
                println!("=== {} ===\n{}", e.name, e.report.render_table());
            }
        }
    }
    if let Some(path) = out {
        let mut text = document.render_pretty();
        text.push('\n');
        if let Err(e) = std::fs::write(&path, text) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::from(2);
        }
        if json {
            eprintln!("wrote {path}");
        } else {
            println!("wrote {path}");
        }
    }

    let hazard_programs = entries
        .iter()
        .filter(|e| !e.report.is_hazard_free())
        .count();
    if hazard_programs > 0 {
        eprintln!(
            "FAIL: {hazard_programs} of {} program(s) have hazards",
            entries.len()
        );
        ExitCode::FAILURE
    } else {
        // In --json mode stdout is the document; keep it parseable.
        let ok = format!("ok: {} program(s) hazard-free", entries.len());
        if json {
            eprintln!("{ok}");
        } else {
            println!("{ok}");
        }
        ExitCode::SUCCESS
    }
}
