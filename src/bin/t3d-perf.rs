//! `t3d-perf` — the perf-trajectory harness.
//!
//! Runs the microbench attribution scenarios and all seven EM3D
//! versions under the cycle-attribution profiler and writes
//! `BENCH_micro.json` / `BENCH_em3d.json` (schema `t3d-perf-bench-v2`:
//! virtual-cycle totals, attribution vectors, and a host-throughput
//! block per entry). A checked-in pair of those documents is the
//! repository's performance trajectory: the `compare` mode flags any
//! benchmark whose virtual-cycle total grew past a tolerance, whose
//! determinism checksum changed at all, or whose host throughput
//! collapsed below the host tolerance.
//!
//! Usage:
//!
//! ```text
//! t3d-perf [micro|em3d|scale|all] [--out DIR] [--compare DIR] [--tol F]
//!          [--host-tol F] [--runs N] [--warmup N] [--report]
//!          [--filter SUBSTR]
//! t3d-perf compare OLD.json NEW.json [--tol F] [--host-tol F]
//! ```
//!
//! `scale` is the Figure-9-style scaling sweep: EM3D plus four micro
//! communication patterns over 8→1024 PEs, each with the contention
//! models off and on (`.cont` entries), written to `BENCH_scale.json`.
//! It is not part of `all` — the sweep constructs 1024-PE machines and
//! runs separately in CI. The suite also self-gates on setup scaling:
//! the 1024-PE machines must construct in less than 10× the 8-PE
//! setup time, the observable contract of the demand-chunked memory
//! arenas.
//!
//! `--out DIR` writes the fresh documents (default: current directory);
//! `--compare DIR` additionally checks them against `DIR/BENCH_*.json`
//! and exits non-zero on regression; `--tol` sets the fractional cycle
//! tolerance (default 0.25) — virtual cycles are deterministic, so it
//! exists only to absorb deliberate timing-model changes; `--host-tol`
//! sets the host-throughput regression tolerance (default 0.5: a run
//! must achieve at least half the baseline's sim-cycles/host-sec);
//! `--runs`/`--warmup` shape the throughput measurement (defaults 3/1);
//! `--report` prints each run's rendered attribution report;
//! `--filter SUBSTR` runs only the micro scenarios whose name contains
//! the substring — a development convenience for iterating on one
//! probe. A filtered document is a subset, so don't check it in as a
//! baseline or `--compare` it against the full one (missing entries
//! fail the gate, by design). Without `--filter`, behaviour and BENCH
//! documents are unchanged.
//!
//! Every measured run must reproduce the first run's cycles, op count
//! and FNV state checksum — a nondeterministic benchmark aborts the
//! harness instead of writing a document.

use std::collections::BTreeMap;
use std::process::ExitCode;

use em3d::{run_version_profiled_contended, run_version_profiled_engine, Em3dParams, Version};
use t3d_machine::{
    BltHandle, EngineMode, Machine, MachineConfig, PerfMode, PerfReport, PhaseDriver,
};
use t3d_microbench::probes::attribution;
use t3d_perf::{
    compare, measure, measure_split, BenchDoc, BenchEntry, RunSample, SplitSample, Throughput,
    ThroughputSpec,
};
use t3d_shell::blt::BltDirection;
use t3d_shell::FuncCode;

struct Opts {
    out: std::path::PathBuf,
    compare_dir: Option<std::path::PathBuf>,
    tol: f64,
    host_tol: f64,
    spec: ThroughputSpec,
    report: bool,
    filter: Option<String>,
}

/// Whether a scenario name passes the `--filter` substring (no filter
/// = everything passes).
fn name_matches(name: &str, filter: Option<&str>) -> bool {
    filter.is_none_or(|f| name.contains(f))
}

/// Total simulated operations a report counted (the `ops.*` registry
/// counters the machine layer maintains under `PerfMode::Counters`).
fn sim_ops(report: &PerfReport) -> u64 {
    report
        .registry
        .counters()
        .filter(|(name, _)| name.starts_with("ops."))
        .map(|(_, v)| v)
        .sum()
}

fn entry_from_report(name: &str, report: &PerfReport, throughput: Throughput) -> BenchEntry {
    let merged = report.merged();
    let attribution: BTreeMap<String, u64> = merged
        .entries()
        .map(|(c, cy)| (c.label().to_string(), cy))
        .collect();
    let mut extras = BTreeMap::new();
    extras.insert("remote_share".to_string(), report.remote_share());
    BenchEntry {
        name: name.to_string(),
        cycles: report.total(),
        attribution,
        extras,
        throughput: Some(throughput),
    }
}

/// Measures one scenario under one engine, with machine-construction
/// time folded into the throughput block's `setup` stat.
fn measure_scenario(
    s: &attribution::Scenario,
    driver: PhaseDriver,
    engine: EngineMode,
    spec: ThroughputSpec,
    first: &mut Option<PerfReport>,
) -> Result<Throughput, String> {
    measure_split(spec, || {
        let run = (s.run)(driver, engine);
        let sample = RunSample {
            sim_cycles: run.report.total(),
            sim_ops: sim_ops(&run.report),
            checksum: run.checksum,
        };
        let setup_secs = run.setup_secs;
        first.get_or_insert(run.report);
        SplitSample { sample, setup_secs }
    })
    .map_err(|e| format!("{} [{engine:?}]: {e}", s.name))
}

fn run_micro(driver: PhaseDriver, engine: EngineMode, opts: &Opts) -> Result<BenchDoc, String> {
    let mut doc = BenchDoc::new("micro");
    let scenarios = attribution::all()
        .iter()
        .filter(|s| name_matches(s.name, opts.filter.as_deref()));
    for s in scenarios {
        let mut first: Option<PerfReport> = None;
        // The published throughput block measures the session engine;
        // a second measurement under the other engine yields the
        // event-core speedup extra and doubles as a differential check.
        let main = measure_scenario(s, driver, engine, opts.spec, &mut first)?;
        let other_engine = match engine {
            EngineMode::Event => EngineMode::Cycle,
            EngineMode::Cycle => EngineMode::Event,
        };
        let mut other_first = None;
        let other = measure_scenario(s, driver, other_engine, opts.spec, &mut other_first)?;
        if (main.checksum, main.sim_cycles) != (other.checksum, other.sim_cycles) {
            return Err(format!(
                "{}: engines diverged: {engine:?} (cycles={}, checksum={:#018x}) vs \
                 {other_engine:?} (cycles={}, checksum={:#018x})",
                s.name, main.sim_cycles, main.checksum, other.sim_cycles, other.checksum
            ));
        }
        let (event_rate, cycle_rate) = match engine {
            EngineMode::Event => (main.cycles_per_sec.mean, other.cycles_per_sec.mean),
            EngineMode::Cycle => (other.cycles_per_sec.mean, main.cycles_per_sec.mean),
        };
        let report = first.expect("measure ran the scenario at least once");
        if opts.report {
            println!("=== {} ===\n{}", s.name, report.render());
        }
        let mut e = entry_from_report(s.name, &report, main);
        if cycle_rate > 0.0 {
            e.extras
                .insert("event_speedup".to_string(), event_rate / cycle_rate);
        }
        doc.entries.push(e);
    }
    Ok(doc)
}

fn run_em3d(driver: PhaseDriver, engine: EngineMode, opts: &Opts) -> Result<BenchDoc, String> {
    let mut doc = BenchDoc::new("em3d");
    let params = Em3dParams::tiny(30.0);
    for v in Version::all() {
        let name = format!("em3d.{}", v.label());
        let mut first: Option<(f64, PerfReport)> = None;
        // EM3D builds its graph and machine inside the run, so there
        // is no setup/simulation split to observe; `measure` leaves the
        // setup stat unset (the micro suite isolates setup).
        let throughput = measure(opts.spec, || {
            let (result, report) = run_version_profiled_engine(driver, engine, 4, params, v);
            let sample = RunSample {
                sim_cycles: report.total(),
                sim_ops: sim_ops(&report),
                checksum: result.mem_fnv,
            };
            first.get_or_insert((result.us_per_edge, report));
            sample
        })
        .map_err(|e| format!("{name}: {e}"))?;
        let (us_per_edge, report) = first.expect("measure ran the version at least once");
        if opts.report {
            println!("=== {name} ===\n{}", report.render());
        }
        let mut e = entry_from_report(&name, &report, throughput);
        e.extras.insert("us_per_edge".to_string(), us_per_edge);
        doc.entries.push(e);
    }
    Ok(doc)
}

/// One scenario of the scaling sweep: a fixed communication pattern
/// run at every machine size, contended and not.
struct ScaleScenario {
    name: &'static str,
    run: fn(&mut Machine, PhaseDriver),
}

/// Machine sizes of the scaling sweep — powers of two up to the
/// full-size 1024-PE T3D the paper's machines shipped as.
const SCALE_PES: [u32; 4] = [8, 64, 256, 1024];

/// Total bytes checksummed across the machine after a scale scenario.
/// Strong-scaled (per-node region = total / PEs) so the hashing half of
/// the `setup` stat costs the same at every size and the ratio gate
/// sees only how construction grows. Sized so the constant hash pass
/// (a few ms) outweighs small-machine construction noise while per-node
/// metadata allocation (~10 µs × 1024) stays well inside the 10× gate —
/// and eagerly committing 16 MB × 1024 node arenas (seconds of zeroing)
/// still fails it by orders of magnitude.
const SCALE_SNAP_TOTAL: u64 = 8 << 20;

/// How much larger the 1024-PE `setup` stat may be than the 8-PE one.
/// With demand-chunked arenas, construction is per-node metadata, not
/// per-node memory; eagerly zeroing 16 MB × 1024 nodes would blow this
/// gate by orders of magnitude.
const SCALE_SETUP_RATIO: f64 = 10.0;

/// Ring exchange: every PE stores eight words into its right
/// neighbor, fences and waits for acks — the put pattern whose
/// barrier and ack classes grow fastest at scale.
fn scale_neighbor(m: &mut Machine, d: PhaseDriver) {
    m.sharded_phase(d, |cpu| {
        let pe = cpu.pe();
        let right = ((pe + 1) % cpu.nodes()) as u32;
        cpu.annex_set(1, right, FuncCode::Uncached);
        for i in 0..8u64 {
            let va = cpu.va(1, 0x1000 + i * 8);
            cpu.st8(va, ((pe as u64) << 8) | i);
        }
        cpu.memory_barrier();
        cpu.wait_write_acks();
    });
    m.barrier_all();
}

/// Every PE atomically increments one counter on PE 0 — the hot-spot
/// pattern that serializes through the target shell and the links into
/// PE 0's sub-cube. Driven directly (not via a phase) so the
/// per-sub-cube contention windows are exercised.
fn scale_hotspot(m: &mut Machine, _d: PhaseDriver) {
    for pe in 1..m.nodes() {
        let _ = m.fetch_inc(pe, 0, 0);
    }
    m.barrier_all();
}

/// Each PE bulk-writes 8 KB to the PE half the machine away — every
/// transfer crosses the bisection, the worst case for link occupancy.
/// Driven directly (all PEs inject at the same virtual time) so
/// concurrent streams genuinely stack on shared dimension-order links;
/// under the phase engine each shard would see the phase-start link
/// snapshot and the simultaneous streams would never meet.
fn scale_transpose(m: &mut Machine, _d: PhaseDriver) {
    let n = m.nodes();
    let handles: Vec<BltHandle> = (0..n)
        .map(|pe| {
            m.blt_start(
                pe,
                BltDirection::Write,
                0x2000,
                (pe + n / 2) % n,
                0x8000,
                8192,
            )
        })
        .collect();
    for (pe, h) in handles.into_iter().enumerate() {
        m.blt_wait(pe, h);
    }
    m.barrier_all();
}

/// Butterfly allreduce: log2(P) rounds of pairwise message exchange
/// with partner `pe XOR 2^round`. Per-PE message count is flat in P;
/// the round count (hence the barrier share) grows as log2(P).
fn scale_allreduce(m: &mut Machine, d: PhaseDriver) {
    let rounds = m.nodes().trailing_zeros();
    for r in 0..rounds {
        m.sharded_phase(d, move |cpu| {
            let partner = cpu.pe() ^ (1usize << r);
            cpu.msg_send(partner, [cpu.pe() as u64, u64::from(r), 0, 0]);
        });
        m.barrier_all();
        m.sharded_phase(d, |cpu| {
            let mut spins = 0;
            while cpu.msg_receive().is_none() {
                cpu.advance(1000);
                spins += 1;
                assert!(spins < 10_000, "allreduce message never arrived");
            }
        });
        m.barrier_all();
    }
}

fn scale_scenarios() -> [ScaleScenario; 4] {
    [
        ScaleScenario {
            name: "neighbor",
            run: scale_neighbor,
        },
        ScaleScenario {
            name: "hotspot",
            run: scale_hotspot,
        },
        ScaleScenario {
            name: "transpose",
            run: scale_transpose,
        },
        ScaleScenario {
            name: "allreduce",
            run: scale_allreduce,
        },
    ]
}

fn scale_machine(pes: u32, engine: EngineMode, contended: bool) -> (Machine, f64) {
    let t = std::time::Instant::now();
    let mut cfg = if contended {
        MachineConfig::t3d_link_contended(pes)
    } else {
        MachineConfig::t3d(pes)
    };
    cfg.engine = engine;
    let mut m = Machine::new(cfg);
    m.set_perf_mode(PerfMode::Counters);
    (m, t.elapsed().as_secs_f64())
}

/// The Figure-9-style scaling sweep: EM3D plus four micro scenarios
/// over 8→1024 PEs, with the contention models off and on. Measures
/// only the session engine (the CI matrix covers the other), and gates
/// on [`check_setup_scaling`] before returning the document.
fn run_scale(driver: PhaseDriver, engine: EngineMode, opts: &Opts) -> Result<BenchDoc, String> {
    let mut doc = BenchDoc::new("scale");
    for contended in [false, true] {
        let suffix = if contended { ".cont" } else { "" };
        for s in &scale_scenarios() {
            for &pes in &SCALE_PES {
                let name = format!("{}.p{pes}{suffix}", s.name);
                let snap = SCALE_SNAP_TOTAL / u64::from(pes);
                let mut first: Option<PerfReport> = None;
                let throughput = measure_split(opts.spec, || {
                    let (mut m, mut setup) = scale_machine(pes, engine, contended);
                    (s.run)(&mut m, driver);
                    let t = std::time::Instant::now();
                    let checksum = m.snapshot_region(0, snap).fnv64();
                    let report = m.perf();
                    setup += t.elapsed().as_secs_f64();
                    let sample = RunSample {
                        sim_cycles: report.total(),
                        sim_ops: sim_ops(&report),
                        checksum,
                    };
                    first.get_or_insert(report);
                    SplitSample {
                        sample,
                        setup_secs: setup,
                    }
                })
                .map_err(|e| format!("{name}: {e}"))?;
                let report = first.expect("measure ran the scenario at least once");
                if opts.report {
                    println!("=== {name} ===\n{}", report.render());
                }
                let mut e = entry_from_report(&name, &report, throughput);
                e.extras.insert("pes".to_string(), f64::from(pes));
                e.extras
                    .insert("contended".to_string(), f64::from(u8::from(contended)));
                doc.entries.push(e);
            }
        }
        for &pes in &SCALE_PES {
            let name = format!("em3d.bulk.p{pes}{suffix}");
            let params = Em3dParams::tiny(30.0);
            let mut first: Option<(f64, PerfReport)> = None;
            let throughput = measure(opts.spec, || {
                let (result, report) = if contended {
                    run_version_profiled_contended(driver, engine, pes, params, Version::Bulk)
                } else {
                    run_version_profiled_engine(driver, engine, pes, params, Version::Bulk)
                };
                let sample = RunSample {
                    sim_cycles: report.total(),
                    sim_ops: sim_ops(&report),
                    checksum: result.mem_fnv,
                };
                first.get_or_insert((result.us_per_edge, report));
                sample
            })
            .map_err(|e| format!("{name}: {e}"))?;
            let (us_per_edge, report) = first.expect("measure ran the version at least once");
            if opts.report {
                println!("=== {name} ===\n{}", report.render());
            }
            let mut e = entry_from_report(&name, &report, throughput);
            e.extras.insert("pes".to_string(), f64::from(pes));
            e.extras
                .insert("contended".to_string(), f64::from(u8::from(contended)));
            e.extras.insert("us_per_edge".to_string(), us_per_edge);
            doc.entries.push(e);
        }
    }
    check_setup_scaling(&doc)?;
    Ok(doc)
}

/// The lazy-arena gate: the largest size's `setup` stat (construction
/// plus a size-independent checksum pass) must stay within
/// [`SCALE_SETUP_RATIO`]× of the smallest size's, per scenario and
/// arm. Eagerly committing per-PE arenas fails this immediately.
fn check_setup_scaling(doc: &BenchDoc) -> Result<(), String> {
    let setup_of = |name: &str| -> Option<f64> {
        doc.entries
            .iter()
            .find(|e| e.name == name)
            .and_then(|e| e.throughput.as_ref())
            .and_then(|t| t.setup.as_ref())
            .map(|s| s.mean)
    };
    let (lo, hi) = (SCALE_PES[0], SCALE_PES[SCALE_PES.len() - 1]);
    for s in &scale_scenarios() {
        for suffix in ["", ".cont"] {
            let (Some(small), Some(big)) = (
                setup_of(&format!("{}.p{lo}{suffix}", s.name)),
                setup_of(&format!("{}.p{hi}{suffix}", s.name)),
            ) else {
                continue;
            };
            if big > small * SCALE_SETUP_RATIO {
                return Err(format!(
                    "{}{suffix}: {hi}-PE setup {big:.6}s exceeds {SCALE_SETUP_RATIO}× the \
                     {lo}-PE setup {small:.6}s — machine construction is no longer \
                     size-independent",
                    s.name
                ));
            }
        }
    }
    Ok(())
}

fn write_doc(doc: &BenchDoc, dir: &std::path::Path) -> std::io::Result<std::path::PathBuf> {
    let path = dir.join(format!("BENCH_{}.json", doc.suite));
    let mut text = doc.to_json().render_pretty();
    text.push('\n');
    std::fs::write(&path, text)?;
    Ok(path)
}

fn check(doc: &BenchDoc, baseline_dir: &std::path::Path, opts: &Opts) -> Result<(), Vec<String>> {
    let path = baseline_dir.join(format!("BENCH_{}.json", doc.suite));
    let text = std::fs::read_to_string(&path)
        .map_err(|e| vec![format!("cannot read baseline {}: {e}", path.display())])?;
    let baseline = BenchDoc::from_json(&text).map_err(|e| vec![e])?;
    let problems = compare(&baseline, doc, opts.tol, opts.host_tol);
    if problems.is_empty() {
        Ok(())
    } else {
        Err(problems)
    }
}

fn take_value_flag(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    let Some(i) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    args.remove(i);
    if i >= args.len() {
        return Err(format!("{flag} requires a value"));
    }
    Ok(Some(args.remove(i)))
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = Opts {
        out: ".".into(),
        compare_dir: None,
        tol: 0.25,
        host_tol: 0.5,
        spec: ThroughputSpec::default(),
        report: false,
        filter: None,
    };
    if let Some(i) = args.iter().position(|a| a == "--report") {
        args.remove(i);
        opts.report = true;
    }
    macro_rules! parse_flag {
        ($flag:expr, $slot:expr) => {
            match take_value_flag(&mut args, $flag) {
                Ok(None) => {}
                Ok(Some(v)) => match v.parse() {
                    Ok(x) => $slot = x,
                    Err(e) => {
                        eprintln!("{}: {e}", $flag);
                        return ExitCode::from(2);
                    }
                },
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::from(2);
                }
            }
        };
    }
    parse_flag!("--tol", opts.tol);
    parse_flag!("--host-tol", opts.host_tol);
    parse_flag!("--runs", opts.spec.runs);
    parse_flag!("--warmup", opts.spec.warmup);
    if opts.spec.runs == 0 {
        eprintln!("--runs must be at least 1");
        return ExitCode::from(2);
    }
    match take_value_flag(&mut args, "--filter") {
        Ok(None) => {}
        Ok(Some(v)) => {
            if !attribution::all().iter().any(|s| s.name.contains(&v)) {
                eprintln!(
                    "--filter {v:?} matches none of the {} micro scenarios",
                    attribution::all().len()
                );
                return ExitCode::from(2);
            }
            opts.filter = Some(v);
        }
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    }
    match take_value_flag(&mut args, "--out") {
        Ok(None) => {}
        Ok(Some(v)) => opts.out = v.into(),
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    }
    match take_value_flag(&mut args, "--compare") {
        Ok(None) => {}
        Ok(Some(v)) => opts.compare_dir = Some(v.into()),
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    }
    let cmd = args.first().map(String::as_str).unwrap_or("all");

    // Standalone two-file comparison: `t3d-perf compare OLD NEW`.
    if cmd == "compare" {
        if args.len() != 3 {
            eprintln!("usage: t3d-perf compare OLD.json NEW.json [--tol F] [--host-tol F]");
            return ExitCode::from(2);
        }
        let read = |p: &str| -> Result<BenchDoc, String> {
            BenchDoc::from_json(&std::fs::read_to_string(p).map_err(|e| format!("{p}: {e}"))?)
        };
        let (old, new) = match (read(&args[1]), read(&args[2])) {
            (Ok(o), Ok(n)) => (o, n),
            (Err(e), _) | (_, Err(e)) => {
                eprintln!("{e}");
                return ExitCode::from(2);
            }
        };
        let problems = compare(&old, &new, opts.tol, opts.host_tol);
        if problems.is_empty() {
            println!(
                "OK: {} entries within {:.0}% of baseline",
                new.entries.len(),
                opts.tol * 100.0
            );
            return ExitCode::SUCCESS;
        }
        for p in &problems {
            eprintln!("REGRESSION: {p}");
        }
        return ExitCode::FAILURE;
    }

    if !matches!(cmd, "micro" | "em3d" | "scale" | "all") {
        eprintln!("unknown command {cmd:?}; expected micro, em3d, scale, all or compare");
        return ExitCode::from(2);
    }
    let driver = PhaseDriver::from_env();
    let engine = EngineMode::from_env();
    let mut docs = Vec::new();
    if matches!(cmd, "micro" | "all") {
        match run_micro(driver, engine, &opts) {
            Ok(doc) => docs.push(doc),
            Err(e) => {
                eprintln!("DETERMINISM FAILURE [micro]: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if matches!(cmd, "em3d" | "all") {
        match run_em3d(driver, engine, &opts) {
            Ok(doc) => docs.push(doc),
            Err(e) => {
                eprintln!("DETERMINISM FAILURE [em3d]: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if cmd == "scale" {
        match run_scale(driver, engine, &opts) {
            Ok(doc) => docs.push(doc),
            Err(e) => {
                eprintln!("FAILURE [scale]: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let mut failed = false;
    for doc in &docs {
        match write_doc(doc, &opts.out) {
            Ok(path) => {
                println!("wrote {} ({} entries)", path.display(), doc.entries.len());
                for e in &doc.entries {
                    if let Some(t) = &e.throughput {
                        println!(
                            "  {:<24} {:>11.3e} cy/s (±{:.1}%), {:>10.3e} ops/s, checksum {:#018x}",
                            e.name,
                            t.cycles_per_sec.mean,
                            if t.cycles_per_sec.mean > 0.0 {
                                t.cycles_per_sec.stddev / t.cycles_per_sec.mean * 100.0
                            } else {
                                0.0
                            },
                            t.ops_per_sec.mean,
                            t.checksum
                        );
                    }
                }
            }
            Err(e) => {
                eprintln!("cannot write BENCH_{}.json: {e}", doc.suite);
                return ExitCode::from(2);
            }
        }
        if let Some(dir) = &opts.compare_dir {
            match check(doc, dir, &opts) {
                Ok(()) => println!("{}: within {:.0}% of baseline", doc.suite, opts.tol * 100.0),
                Err(problems) => {
                    for p in problems {
                        eprintln!("REGRESSION [{}]: {p}", doc.suite);
                    }
                    failed = true;
                }
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_is_substring_and_absent_means_all() {
        assert!(name_matches("store.remote", None));
        assert!(name_matches("store.remote", Some("store")));
        assert!(name_matches("store.remote", Some("remote")));
        assert!(!name_matches("store.remote", Some("bulk")));
        // Every scenario passes the empty filter, so `--filter ""`
        // degenerates to the full suite rather than an error.
        for s in attribution::all() {
            assert!(name_matches(s.name, Some("")));
        }
    }
}
