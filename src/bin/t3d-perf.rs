//! `t3d-perf` — the perf-trajectory harness.
//!
//! Runs the microbench attribution scenarios and all seven EM3D
//! versions under the cycle-attribution profiler and writes
//! `BENCH_micro.json` / `BENCH_em3d.json` (virtual-cycle totals,
//! attribution vectors and host wall-clock). A checked-in pair of those
//! documents is the repository's performance trajectory: the `compare`
//! mode flags any benchmark whose virtual-cycle total grew past a
//! tolerance.
//!
//! Usage:
//!
//! ```text
//! t3d-perf [micro|em3d|all] [--out DIR] [--compare DIR] [--tol F] [--report]
//! t3d-perf compare OLD.json NEW.json [--tol F]
//! ```
//!
//! `--out DIR` writes the fresh documents (default: current directory);
//! `--compare DIR` additionally checks them against `DIR/BENCH_*.json`
//! and exits non-zero on regression; `--tol` sets the fractional cycle
//! tolerance (default 0.25); `--report` prints each run's rendered
//! attribution report. Virtual cycles are deterministic, so the
//! tolerance exists only to absorb deliberate timing-model changes.

use std::collections::BTreeMap;
use std::process::ExitCode;
use std::time::Instant;

use em3d::{run_version_profiled, Em3dParams, Version};
use t3d_machine::{PerfReport, PhaseDriver};
use t3d_microbench::probes::attribution;
use t3d_perf::{compare, BenchDoc, BenchEntry};

struct Opts {
    out: std::path::PathBuf,
    compare_dir: Option<std::path::PathBuf>,
    tol: f64,
    report: bool,
}

fn entry_from_report(name: &str, report: &PerfReport, wall_ms: f64) -> BenchEntry {
    let merged = report.merged();
    let attribution: BTreeMap<String, u64> = merged
        .entries()
        .map(|(c, cy)| (c.label().to_string(), cy))
        .collect();
    let mut extras = BTreeMap::new();
    extras.insert("remote_share".to_string(), report.remote_share());
    BenchEntry {
        name: name.to_string(),
        cycles: report.total(),
        attribution,
        extras,
        wall_ms,
    }
}

fn run_micro(driver: PhaseDriver, report: bool) -> BenchDoc {
    let mut doc = BenchDoc::new("micro");
    for s in attribution::all() {
        let t = Instant::now();
        let r = (s.run)(driver);
        let wall_ms = t.elapsed().as_secs_f64() * 1000.0;
        if report {
            println!("=== {} ===\n{}", s.name, r.render());
        }
        doc.entries.push(entry_from_report(s.name, &r, wall_ms));
    }
    doc
}

fn run_em3d(driver: PhaseDriver, report: bool) -> BenchDoc {
    let mut doc = BenchDoc::new("em3d");
    let params = Em3dParams::tiny(30.0);
    for v in Version::all() {
        let t = Instant::now();
        let (result, r) = run_version_profiled(driver, 4, params, v);
        let wall_ms = t.elapsed().as_secs_f64() * 1000.0;
        if report {
            println!("=== em3d.{} ===\n{}", v.label(), r.render());
        }
        let name = format!("em3d.{}", v.label());
        let mut e = entry_from_report(&name, &r, wall_ms);
        e.extras
            .insert("us_per_edge".to_string(), result.us_per_edge);
        doc.entries.push(e);
    }
    doc
}

fn write_doc(doc: &BenchDoc, dir: &std::path::Path) -> std::io::Result<std::path::PathBuf> {
    let path = dir.join(format!("BENCH_{}.json", doc.suite));
    let mut text = doc.to_json().render_pretty();
    text.push('\n');
    std::fs::write(&path, text)?;
    Ok(path)
}

fn check(doc: &BenchDoc, baseline_dir: &std::path::Path, tol: f64) -> Result<(), Vec<String>> {
    let path = baseline_dir.join(format!("BENCH_{}.json", doc.suite));
    let text = std::fs::read_to_string(&path)
        .map_err(|e| vec![format!("cannot read baseline {}: {e}", path.display())])?;
    let baseline = BenchDoc::from_json(&text).map_err(|e| vec![e])?;
    let problems = compare(&baseline, doc, tol);
    if problems.is_empty() {
        Ok(())
    } else {
        Err(problems)
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = Opts {
        out: ".".into(),
        compare_dir: None,
        tol: 0.25,
        report: false,
    };
    if let Some(i) = args.iter().position(|a| a == "--report") {
        args.remove(i);
        opts.report = true;
    }
    if let Some(i) = args.iter().position(|a| a == "--tol") {
        args.remove(i);
        if i >= args.len() {
            eprintln!("--tol requires a fraction (e.g. 0.25)");
            return ExitCode::from(2);
        }
        match args.remove(i).parse() {
            Ok(t) => opts.tol = t,
            Err(e) => {
                eprintln!("--tol: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if let Some(i) = args.iter().position(|a| a == "--out") {
        args.remove(i);
        if i >= args.len() {
            eprintln!("--out requires a directory");
            return ExitCode::from(2);
        }
        opts.out = args.remove(i).into();
    }
    if let Some(i) = args.iter().position(|a| a == "--compare") {
        args.remove(i);
        if i >= args.len() {
            eprintln!("--compare requires a directory holding BENCH_*.json baselines");
            return ExitCode::from(2);
        }
        opts.compare_dir = Some(args.remove(i).into());
    }
    let cmd = args.first().map(String::as_str).unwrap_or("all");

    // Standalone two-file comparison: `t3d-perf compare OLD NEW`.
    if cmd == "compare" {
        if args.len() != 3 {
            eprintln!("usage: t3d-perf compare OLD.json NEW.json [--tol F]");
            return ExitCode::from(2);
        }
        let read = |p: &str| -> Result<BenchDoc, String> {
            BenchDoc::from_json(&std::fs::read_to_string(p).map_err(|e| format!("{p}: {e}"))?)
        };
        let (old, new) = match (read(&args[1]), read(&args[2])) {
            (Ok(o), Ok(n)) => (o, n),
            (Err(e), _) | (_, Err(e)) => {
                eprintln!("{e}");
                return ExitCode::from(2);
            }
        };
        let problems = compare(&old, &new, opts.tol);
        if problems.is_empty() {
            println!(
                "OK: {} entries within {:.0}% of baseline",
                new.entries.len(),
                opts.tol * 100.0
            );
            return ExitCode::SUCCESS;
        }
        for p in &problems {
            eprintln!("REGRESSION: {p}");
        }
        return ExitCode::FAILURE;
    }

    if !matches!(cmd, "micro" | "em3d" | "all") {
        eprintln!("unknown command {cmd:?}; expected micro, em3d, all or compare");
        return ExitCode::from(2);
    }
    let driver = PhaseDriver::from_env();
    let mut docs = Vec::new();
    if matches!(cmd, "micro" | "all") {
        docs.push(run_micro(driver, opts.report));
    }
    if matches!(cmd, "em3d" | "all") {
        docs.push(run_em3d(driver, opts.report));
    }

    let mut failed = false;
    for doc in &docs {
        match write_doc(doc, &opts.out) {
            Ok(path) => println!("wrote {} ({} entries)", path.display(), doc.entries.len()),
            Err(e) => {
                eprintln!("cannot write BENCH_{}.json: {e}", doc.suite);
                return ExitCode::from(2);
            }
        }
        if let Some(dir) = &opts.compare_dir {
            match check(doc, dir, opts.tol) {
                Ok(()) => println!("{}: within {:.0}% of baseline", doc.suite, opts.tol * 100.0),
                Err(problems) => {
                    for p in problems {
                        eprintln!("REGRESSION [{}]: {p}", doc.suite);
                    }
                    failed = true;
                }
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
