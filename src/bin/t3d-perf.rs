//! `t3d-perf` — the perf-trajectory harness.
//!
//! Runs the microbench attribution scenarios and all seven EM3D
//! versions under the cycle-attribution profiler and writes
//! `BENCH_micro.json` / `BENCH_em3d.json` (schema `t3d-perf-bench-v2`:
//! virtual-cycle totals, attribution vectors, and a host-throughput
//! block per entry). A checked-in pair of those documents is the
//! repository's performance trajectory: the `compare` mode flags any
//! benchmark whose virtual-cycle total grew past a tolerance, whose
//! determinism checksum changed at all, or whose host throughput
//! collapsed below the host tolerance.
//!
//! Usage:
//!
//! ```text
//! t3d-perf [micro|em3d|all] [--out DIR] [--compare DIR] [--tol F]
//!          [--host-tol F] [--runs N] [--warmup N] [--report]
//!          [--filter SUBSTR]
//! t3d-perf compare OLD.json NEW.json [--tol F] [--host-tol F]
//! ```
//!
//! `--out DIR` writes the fresh documents (default: current directory);
//! `--compare DIR` additionally checks them against `DIR/BENCH_*.json`
//! and exits non-zero on regression; `--tol` sets the fractional cycle
//! tolerance (default 0.25) — virtual cycles are deterministic, so it
//! exists only to absorb deliberate timing-model changes; `--host-tol`
//! sets the host-throughput regression tolerance (default 0.5: a run
//! must achieve at least half the baseline's sim-cycles/host-sec);
//! `--runs`/`--warmup` shape the throughput measurement (defaults 3/1);
//! `--report` prints each run's rendered attribution report;
//! `--filter SUBSTR` runs only the micro scenarios whose name contains
//! the substring — a development convenience for iterating on one
//! probe. A filtered document is a subset, so don't check it in as a
//! baseline or `--compare` it against the full one (missing entries
//! fail the gate, by design). Without `--filter`, behaviour and BENCH
//! documents are unchanged.
//!
//! Every measured run must reproduce the first run's cycles, op count
//! and FNV state checksum — a nondeterministic benchmark aborts the
//! harness instead of writing a document.

use std::collections::BTreeMap;
use std::process::ExitCode;

use em3d::{run_version_profiled_engine, Em3dParams, Version};
use t3d_machine::{EngineMode, PerfReport, PhaseDriver};
use t3d_microbench::probes::attribution;
use t3d_perf::{
    compare, measure, measure_split, BenchDoc, BenchEntry, RunSample, SplitSample, Throughput,
    ThroughputSpec,
};

struct Opts {
    out: std::path::PathBuf,
    compare_dir: Option<std::path::PathBuf>,
    tol: f64,
    host_tol: f64,
    spec: ThroughputSpec,
    report: bool,
    filter: Option<String>,
}

/// Whether a scenario name passes the `--filter` substring (no filter
/// = everything passes).
fn name_matches(name: &str, filter: Option<&str>) -> bool {
    filter.is_none_or(|f| name.contains(f))
}

/// Total simulated operations a report counted (the `ops.*` registry
/// counters the machine layer maintains under `PerfMode::Counters`).
fn sim_ops(report: &PerfReport) -> u64 {
    report
        .registry
        .counters()
        .filter(|(name, _)| name.starts_with("ops."))
        .map(|(_, v)| v)
        .sum()
}

fn entry_from_report(name: &str, report: &PerfReport, throughput: Throughput) -> BenchEntry {
    let merged = report.merged();
    let attribution: BTreeMap<String, u64> = merged
        .entries()
        .map(|(c, cy)| (c.label().to_string(), cy))
        .collect();
    let mut extras = BTreeMap::new();
    extras.insert("remote_share".to_string(), report.remote_share());
    BenchEntry {
        name: name.to_string(),
        cycles: report.total(),
        attribution,
        extras,
        throughput: Some(throughput),
    }
}

/// Measures one scenario under one engine, with machine-construction
/// time folded into the throughput block's `setup` stat.
fn measure_scenario(
    s: &attribution::Scenario,
    driver: PhaseDriver,
    engine: EngineMode,
    spec: ThroughputSpec,
    first: &mut Option<PerfReport>,
) -> Result<Throughput, String> {
    measure_split(spec, || {
        let run = (s.run)(driver, engine);
        let sample = RunSample {
            sim_cycles: run.report.total(),
            sim_ops: sim_ops(&run.report),
            checksum: run.checksum,
        };
        let setup_secs = run.setup_secs;
        first.get_or_insert(run.report);
        SplitSample { sample, setup_secs }
    })
    .map_err(|e| format!("{} [{engine:?}]: {e}", s.name))
}

fn run_micro(driver: PhaseDriver, engine: EngineMode, opts: &Opts) -> Result<BenchDoc, String> {
    let mut doc = BenchDoc::new("micro");
    let scenarios = attribution::all()
        .iter()
        .filter(|s| name_matches(s.name, opts.filter.as_deref()));
    for s in scenarios {
        let mut first: Option<PerfReport> = None;
        // The published throughput block measures the session engine;
        // a second measurement under the other engine yields the
        // event-core speedup extra and doubles as a differential check.
        let main = measure_scenario(s, driver, engine, opts.spec, &mut first)?;
        let other_engine = match engine {
            EngineMode::Event => EngineMode::Cycle,
            EngineMode::Cycle => EngineMode::Event,
        };
        let mut other_first = None;
        let other = measure_scenario(s, driver, other_engine, opts.spec, &mut other_first)?;
        if (main.checksum, main.sim_cycles) != (other.checksum, other.sim_cycles) {
            return Err(format!(
                "{}: engines diverged: {engine:?} (cycles={}, checksum={:#018x}) vs \
                 {other_engine:?} (cycles={}, checksum={:#018x})",
                s.name, main.sim_cycles, main.checksum, other.sim_cycles, other.checksum
            ));
        }
        let (event_rate, cycle_rate) = match engine {
            EngineMode::Event => (main.cycles_per_sec.mean, other.cycles_per_sec.mean),
            EngineMode::Cycle => (other.cycles_per_sec.mean, main.cycles_per_sec.mean),
        };
        let report = first.expect("measure ran the scenario at least once");
        if opts.report {
            println!("=== {} ===\n{}", s.name, report.render());
        }
        let mut e = entry_from_report(s.name, &report, main);
        if cycle_rate > 0.0 {
            e.extras
                .insert("event_speedup".to_string(), event_rate / cycle_rate);
        }
        doc.entries.push(e);
    }
    Ok(doc)
}

fn run_em3d(driver: PhaseDriver, engine: EngineMode, opts: &Opts) -> Result<BenchDoc, String> {
    let mut doc = BenchDoc::new("em3d");
    let params = Em3dParams::tiny(30.0);
    for v in Version::all() {
        let name = format!("em3d.{}", v.label());
        let mut first: Option<(f64, PerfReport)> = None;
        // EM3D builds its graph and machine inside the run, so there
        // is no setup/simulation split to observe; `measure` leaves the
        // setup stat unset (the micro suite isolates setup).
        let throughput = measure(opts.spec, || {
            let (result, report) = run_version_profiled_engine(driver, engine, 4, params, v);
            let sample = RunSample {
                sim_cycles: report.total(),
                sim_ops: sim_ops(&report),
                checksum: result.mem_fnv,
            };
            first.get_or_insert((result.us_per_edge, report));
            sample
        })
        .map_err(|e| format!("{name}: {e}"))?;
        let (us_per_edge, report) = first.expect("measure ran the version at least once");
        if opts.report {
            println!("=== {name} ===\n{}", report.render());
        }
        let mut e = entry_from_report(&name, &report, throughput);
        e.extras.insert("us_per_edge".to_string(), us_per_edge);
        doc.entries.push(e);
    }
    Ok(doc)
}

fn write_doc(doc: &BenchDoc, dir: &std::path::Path) -> std::io::Result<std::path::PathBuf> {
    let path = dir.join(format!("BENCH_{}.json", doc.suite));
    let mut text = doc.to_json().render_pretty();
    text.push('\n');
    std::fs::write(&path, text)?;
    Ok(path)
}

fn check(doc: &BenchDoc, baseline_dir: &std::path::Path, opts: &Opts) -> Result<(), Vec<String>> {
    let path = baseline_dir.join(format!("BENCH_{}.json", doc.suite));
    let text = std::fs::read_to_string(&path)
        .map_err(|e| vec![format!("cannot read baseline {}: {e}", path.display())])?;
    let baseline = BenchDoc::from_json(&text).map_err(|e| vec![e])?;
    let problems = compare(&baseline, doc, opts.tol, opts.host_tol);
    if problems.is_empty() {
        Ok(())
    } else {
        Err(problems)
    }
}

fn take_value_flag(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    let Some(i) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    args.remove(i);
    if i >= args.len() {
        return Err(format!("{flag} requires a value"));
    }
    Ok(Some(args.remove(i)))
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = Opts {
        out: ".".into(),
        compare_dir: None,
        tol: 0.25,
        host_tol: 0.5,
        spec: ThroughputSpec::default(),
        report: false,
        filter: None,
    };
    if let Some(i) = args.iter().position(|a| a == "--report") {
        args.remove(i);
        opts.report = true;
    }
    macro_rules! parse_flag {
        ($flag:expr, $slot:expr) => {
            match take_value_flag(&mut args, $flag) {
                Ok(None) => {}
                Ok(Some(v)) => match v.parse() {
                    Ok(x) => $slot = x,
                    Err(e) => {
                        eprintln!("{}: {e}", $flag);
                        return ExitCode::from(2);
                    }
                },
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::from(2);
                }
            }
        };
    }
    parse_flag!("--tol", opts.tol);
    parse_flag!("--host-tol", opts.host_tol);
    parse_flag!("--runs", opts.spec.runs);
    parse_flag!("--warmup", opts.spec.warmup);
    if opts.spec.runs == 0 {
        eprintln!("--runs must be at least 1");
        return ExitCode::from(2);
    }
    match take_value_flag(&mut args, "--filter") {
        Ok(None) => {}
        Ok(Some(v)) => {
            if !attribution::all().iter().any(|s| s.name.contains(&v)) {
                eprintln!(
                    "--filter {v:?} matches none of the {} micro scenarios",
                    attribution::all().len()
                );
                return ExitCode::from(2);
            }
            opts.filter = Some(v);
        }
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    }
    match take_value_flag(&mut args, "--out") {
        Ok(None) => {}
        Ok(Some(v)) => opts.out = v.into(),
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    }
    match take_value_flag(&mut args, "--compare") {
        Ok(None) => {}
        Ok(Some(v)) => opts.compare_dir = Some(v.into()),
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    }
    let cmd = args.first().map(String::as_str).unwrap_or("all");

    // Standalone two-file comparison: `t3d-perf compare OLD NEW`.
    if cmd == "compare" {
        if args.len() != 3 {
            eprintln!("usage: t3d-perf compare OLD.json NEW.json [--tol F] [--host-tol F]");
            return ExitCode::from(2);
        }
        let read = |p: &str| -> Result<BenchDoc, String> {
            BenchDoc::from_json(&std::fs::read_to_string(p).map_err(|e| format!("{p}: {e}"))?)
        };
        let (old, new) = match (read(&args[1]), read(&args[2])) {
            (Ok(o), Ok(n)) => (o, n),
            (Err(e), _) | (_, Err(e)) => {
                eprintln!("{e}");
                return ExitCode::from(2);
            }
        };
        let problems = compare(&old, &new, opts.tol, opts.host_tol);
        if problems.is_empty() {
            println!(
                "OK: {} entries within {:.0}% of baseline",
                new.entries.len(),
                opts.tol * 100.0
            );
            return ExitCode::SUCCESS;
        }
        for p in &problems {
            eprintln!("REGRESSION: {p}");
        }
        return ExitCode::FAILURE;
    }

    if !matches!(cmd, "micro" | "em3d" | "all") {
        eprintln!("unknown command {cmd:?}; expected micro, em3d, all or compare");
        return ExitCode::from(2);
    }
    let driver = PhaseDriver::from_env();
    let engine = EngineMode::from_env();
    let mut docs = Vec::new();
    if matches!(cmd, "micro" | "all") {
        match run_micro(driver, engine, &opts) {
            Ok(doc) => docs.push(doc),
            Err(e) => {
                eprintln!("DETERMINISM FAILURE [micro]: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if matches!(cmd, "em3d" | "all") {
        match run_em3d(driver, engine, &opts) {
            Ok(doc) => docs.push(doc),
            Err(e) => {
                eprintln!("DETERMINISM FAILURE [em3d]: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let mut failed = false;
    for doc in &docs {
        match write_doc(doc, &opts.out) {
            Ok(path) => {
                println!("wrote {} ({} entries)", path.display(), doc.entries.len());
                for e in &doc.entries {
                    if let Some(t) = &e.throughput {
                        println!(
                            "  {:<24} {:>11.3e} cy/s (±{:.1}%), {:>10.3e} ops/s, checksum {:#018x}",
                            e.name,
                            t.cycles_per_sec.mean,
                            if t.cycles_per_sec.mean > 0.0 {
                                t.cycles_per_sec.stddev / t.cycles_per_sec.mean * 100.0
                            } else {
                                0.0
                            },
                            t.ops_per_sec.mean,
                            t.checksum
                        );
                    }
                }
            }
            Err(e) => {
                eprintln!("cannot write BENCH_{}.json: {e}", doc.suite);
                return ExitCode::from(2);
            }
        }
        if let Some(dir) = &opts.compare_dir {
            match check(doc, dir, &opts) {
                Ok(()) => println!("{}: within {:.0}% of baseline", doc.suite, opts.tol * 100.0),
                Err(problems) => {
                    for p in problems {
                        eprintln!("REGRESSION [{}]: {p}", doc.suite);
                    }
                    failed = true;
                }
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_is_substring_and_absent_means_all() {
        assert!(name_matches("store.remote", None));
        assert!(name_matches("store.remote", Some("store")));
        assert!(name_matches("store.remote", Some("remote")));
        assert!(!name_matches("store.remote", Some("bulk")));
        // Every scenario passes the empty filter, so `--filter ""`
        // degenerates to the full suite rather than an error.
        for s in attribution::all() {
            assert!(name_matches(s.name, Some("")));
        }
    }
}
