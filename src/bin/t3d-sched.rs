//! `t3d-sched` — the multi-tenant job-stream harness.
//!
//! Drives the gang scheduler in `crates/sched`: generates synthetic
//! job traces, schedules them onto torus partitions of a simulated
//! T3D, and sweeps offered load to produce the checked-in saturation
//! curve `BENCH_sched.json` (schema `t3d-sched-v1`).
//!
//! Usage:
//!
//! ```text
//! t3d-sched gen [--jobs N] [--mean-gap CY] [--seed S]
//!               [--min-order K] [--max-order K] [--out FILE]
//! t3d-sched run TRACE.json [--machine XxYxZ] [--backfill]
//! t3d-sched sweep [--jobs N] [--seed S] [--machine XxYxZ | --pes N]
//!                 [--backfill] [--out DIR] [--compare DIR] [--tol F]
//! t3d-sched compare OLD.json NEW.json [--tol F]
//! ```
//!
//! `gen` writes a `t3d-sched-trace-v1` trace; `run` schedules one and
//! prints the per-job ledger (ending with the ledger FNV fingerprint
//! the CI smoke matrix compares across `T3D_PAR`/`T3D_EVENT`); `sweep`
//! runs the same job bodies at a ladder of offered loads and writes
//! `BENCH_sched.json`, optionally comparing against a baseline
//! directory (exit non-zero on regression). `sweep --pes N` sizes the
//! machine from a PE count instead of explicit extents, using the same
//! near-cubic factorisation every other harness in the workspace uses
//! (`--pes 256` → an 8x8x4 torus), so the saturation ladder runs on
//! full-size sub-machines without hand-picking dims. Everything is
//! virtual-time deterministic: the same seed yields byte-identical
//! traces and bit-identical ledgers under both phase drivers and both
//! time-advance engines.

use std::process::ExitCode;

use t3d_sched::{
    compare, run_trace, ExecEnv, GenParams, HistSummary, KernelCache, SchedDoc, SimParams,
    SweepPoint, Trace,
};

/// The sweep's offered-load ladder: from a quiet machine to well past
/// saturation (gang scheduling plus power-of-two rounding caps
/// achievable utilization well below 1, so the knee sits early).
const LOADS: [f64; 6] = [0.25, 0.5, 0.75, 1.0, 2.0, 4.0];

fn take_value_flag(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    let Some(i) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    args.remove(i);
    if i >= args.len() {
        return Err(format!("{flag} requires a value"));
    }
    Ok(Some(args.remove(i)))
}

fn take_bool_flag(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(i) = args.iter().position(|a| a == flag) {
        args.remove(i);
        true
    } else {
        false
    }
}

fn parse_machine(text: &str) -> Result<(u32, u32, u32), String> {
    let parts: Vec<&str> = text.split('x').collect();
    if parts.len() != 3 {
        return Err(format!("machine must be XxYxZ, got {text:?}"));
    }
    let ext = |i: usize| -> Result<u32, String> {
        parts[i]
            .parse()
            .map_err(|e| format!("bad machine extent {:?}: {e}", parts[i]))
    };
    Ok((ext(0)?, ext(1)?, ext(2)?))
}

fn parse_seed(text: &str) -> Result<u64, String> {
    if let Some(hex) = text.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).map_err(|e| format!("bad seed {text:?}: {e}"))
    } else {
        text.parse().map_err(|e| format!("bad seed {text:?}: {e}"))
    }
}

fn cmd_gen(mut args: Vec<String>) -> Result<(), String> {
    let mut p = GenParams::default();
    if let Some(v) = take_value_flag(&mut args, "--jobs")? {
        p.jobs = v.parse().map_err(|e| format!("--jobs: {e}"))?;
    }
    if let Some(v) = take_value_flag(&mut args, "--mean-gap")? {
        p.mean_interarrival_cy = v.parse().map_err(|e| format!("--mean-gap: {e}"))?;
    }
    if let Some(v) = take_value_flag(&mut args, "--seed")? {
        p.seed = parse_seed(&v)?;
    }
    if let Some(v) = take_value_flag(&mut args, "--min-order")? {
        p.min_order = v.parse().map_err(|e| format!("--min-order: {e}"))?;
    }
    if let Some(v) = take_value_flag(&mut args, "--max-order")? {
        p.max_order = v.parse().map_err(|e| format!("--max-order: {e}"))?;
    }
    let out = take_value_flag(&mut args, "--out")?;
    if let Some(extra) = args.first() {
        return Err(format!("unexpected argument {extra:?}"));
    }
    let trace = Trace::generate(p);
    let mut text = trace.render();
    text.push('\n');
    match out {
        Some(path) => {
            std::fs::write(&path, text).map_err(|e| format!("{path}: {e}"))?;
            println!(
                "wrote {path}: {} jobs, trace fingerprint {:#018x}",
                trace.jobs.len(),
                trace.fingerprint()
            );
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn cmd_run(mut args: Vec<String>) -> Result<(), String> {
    let mut machine = (4, 4, 2);
    if let Some(v) = take_value_flag(&mut args, "--machine")? {
        machine = parse_machine(&v)?;
    }
    let backfill = take_bool_flag(&mut args, "--backfill");
    let [path] = args.as_slice() else {
        return Err("usage: t3d-sched run TRACE.json [--machine XxYxZ] [--backfill]".to_string());
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let trace = Trace::parse(&text)?;
    let params = SimParams {
        machine,
        backfill,
        env: ExecEnv::from_env(),
    };
    let mut cache = KernelCache::new();
    let run = run_trace(&trace, &params, &mut cache);

    println!(
        "{} jobs on a {}x{}x{} machine ({}, {:?} driver, {:?} engine)",
        trace.jobs.len(),
        machine.0,
        machine.1,
        machine.2,
        if backfill { "backfill" } else { "strict FCFS" },
        params.env.driver,
        params.env.engine,
    );
    println!(
        "{:>4} {:<16} {:>4} {:>12} {:>12} {:>12} {:>12}  block",
        "job", "kernel", "pes", "arrival", "wait", "run", "finish"
    );
    for o in &run.outcomes {
        let job = &trace.jobs[o.job_id as usize];
        println!(
            "{:>4} {:<16} {:>4} {:>12} {:>12} {:>12} {:>12}  {}",
            o.job_id,
            job.kernel.name(),
            job.pe_count,
            o.arrival_cy,
            o.wait_cy(),
            o.run_cy(),
            o.finish_cy,
            o.block,
        );
    }
    let machine_pes = u64::from(machine.0) * u64::from(machine.1) * u64::from(machine.2);
    let t = HistSummary::of(&run.metrics.turnaround);
    let w = HistSummary::of(&run.metrics.wait);
    println!(
        "makespan {} cy, utilization {:.3}, queue mean {:.2} max {}",
        run.makespan_cy,
        run.utilization(machine_pes),
        run.metrics.queue_mean(run.makespan_cy),
        run.metrics.queue_max,
    );
    println!(
        "wait p50/p95/p99 {}/{}/{} cy, turnaround p50/p95/p99 {}/{}/{} cy",
        w.p50, w.p95, w.p99, t.p50, t.p95, t.p99
    );
    println!(
        "alloc: {} allocs, {} splits, {} coalesces, {} fit failures; \
         kernel cache {} runs {} hits",
        run.alloc_stats.allocs,
        run.alloc_stats.splits,
        run.alloc_stats.coalesces,
        run.alloc_stats.fit_failures,
        cache.misses(),
        cache.hits(),
    );
    println!("ledger_fnv {:#018x}", run.ledger_fnv);
    Ok(())
}

/// Runs the saturation sweep: the same seeded job bodies replayed at
/// each target load, with the mean inter-arrival gap calibrated from
/// the jobs' actual (memoised) service demands.
fn run_sweep(machine: (u32, u32, u32), jobs: u32, seed: u64, backfill: bool) -> SchedDoc {
    let env = ExecEnv::from_env();
    let machine_pes = u64::from(machine.0) * u64::from(machine.1) * u64::from(machine.2);
    println!(
        "sweep: {}x{}x{} machine ({machine_pes} PEs), {jobs} jobs per point, seed {seed:#x}, {}",
        machine.0,
        machine.1,
        machine.2,
        if backfill { "backfill" } else { "strict FCFS" },
    );
    let mut cache = KernelCache::new();

    // Job bodies depend only on the seed: `Trace::generate` draws one
    // gap sample per job regardless of the mean, so regenerating with
    // a different mean gap rescales arrivals while keeping every
    // (kernel, pes, size, seed) body identical — which is what lets
    // one kernel cache serve the whole ladder.
    let probe = Trace::generate(GenParams {
        jobs,
        seed,
        ..GenParams::default()
    });
    // Prime the cache and measure mean demand (PE-cycles per job).
    let mut demand_pe_cy = 0u64;
    for job in &probe.jobs {
        let pes = u64::from(job.pe_count).next_power_of_two();
        let r = cache.run(env, job, pes as u32);
        demand_pe_cy += pes * r.cycles;
    }
    let mean_demand = demand_pe_cy as f64 / f64::from(jobs);

    let mut points = Vec::new();
    for load in LOADS {
        // Offered load = (mean demand / mean gap) / machine PEs.
        let gap = (mean_demand / (load * machine_pes as f64)).round() as u64;
        let trace = Trace::generate(GenParams {
            jobs,
            mean_interarrival_cy: gap.max(2),
            seed,
            ..GenParams::default()
        });
        let params = SimParams {
            machine,
            backfill,
            env,
        };
        let run = run_trace(&trace, &params, &mut cache);
        let point = SweepPoint {
            load,
            mean_interarrival_cy: gap.max(2),
            jobs,
            wait: HistSummary::of(&run.metrics.wait),
            run: HistSummary::of(&run.metrics.run),
            turnaround: HistSummary::of(&run.metrics.turnaround),
            utilization: run.utilization(machine_pes),
            queue_mean: run.metrics.queue_mean(run.makespan_cy),
            queue_max: run.metrics.queue_max,
            makespan_cy: run.makespan_cy,
            ledger_fnv: run.ledger_fnv,
        };
        println!(
            "load {:>4.2}: gap {:>9} cy, util {:.3}, turnaround p50/p99 {}/{} cy, \
             queue mean {:>5.2} max {:>2}, ledger {:#018x}",
            point.load,
            point.mean_interarrival_cy,
            point.utilization,
            point.turnaround.p50,
            point.turnaround.p99,
            point.queue_mean,
            point.queue_max,
            point.ledger_fnv,
        );
        points.push(point);
    }
    println!(
        "kernel cache: {} distinct runs, {} hits across {} load points",
        cache.misses(),
        cache.hits(),
        LOADS.len()
    );
    SchedDoc {
        machine,
        seed,
        backfill,
        points,
    }
}

fn cmd_sweep(mut args: Vec<String>) -> Result<bool, String> {
    let mut jobs = 96u32;
    let mut seed = 0x5EED_u64;
    let mut tol = 0.25f64;
    let machine_flag = take_value_flag(&mut args, "--machine")?;
    let pes_flag = take_value_flag(&mut args, "--pes")?;
    let machine = match (machine_flag, pes_flag) {
        (Some(_), Some(_)) => {
            return Err("--machine and --pes are mutually exclusive".to_string());
        }
        (Some(v), None) => parse_machine(&v)?,
        (None, Some(v)) => {
            let pes: u32 = v.parse().map_err(|e| format!("--pes: {e}"))?;
            // The partition allocator buddies over power-of-two extents,
            // so the PE count must be one too; the near-cubic
            // factorisation then yields power-of-two extents.
            if !pes.is_power_of_two() {
                return Err(format!("--pes must be a power of two, got {pes}"));
            }
            t3d_torus::TorusConfig::for_nodes(pes).dims
        }
        (None, None) => (4, 4, 2),
    };
    if let Some(v) = take_value_flag(&mut args, "--jobs")? {
        jobs = v.parse().map_err(|e| format!("--jobs: {e}"))?;
    }
    if let Some(v) = take_value_flag(&mut args, "--seed")? {
        seed = parse_seed(&v)?;
    }
    if let Some(v) = take_value_flag(&mut args, "--tol")? {
        tol = v.parse().map_err(|e| format!("--tol: {e}"))?;
    }
    let backfill = take_bool_flag(&mut args, "--backfill");
    let out: std::path::PathBuf = take_value_flag(&mut args, "--out")?
        .unwrap_or_else(|| ".".to_string())
        .into();
    let compare_dir = take_value_flag(&mut args, "--compare")?;
    if let Some(extra) = args.first() {
        return Err(format!("unexpected argument {extra:?}"));
    }

    let doc = run_sweep(machine, jobs, seed, backfill);
    let path = out.join("BENCH_sched.json");
    let mut text = doc.render();
    text.push('\n');
    std::fs::write(&path, text).map_err(|e| format!("{}: {e}", path.display()))?;
    println!(
        "wrote {} ({} load points)",
        path.display(),
        doc.points.len()
    );

    if let Some(dir) = compare_dir {
        let base_path = std::path::Path::new(&dir).join("BENCH_sched.json");
        let base_text = std::fs::read_to_string(&base_path)
            .map_err(|e| format!("cannot read baseline {}: {e}", base_path.display()))?;
        let baseline = SchedDoc::parse(&base_text)?;
        let problems = compare(&baseline, &doc, tol);
        if problems.is_empty() {
            println!("sched: within {:.0}% of baseline", tol * 100.0);
        } else {
            for p in &problems {
                eprintln!("REGRESSION [sched]: {p}");
            }
            return Ok(false);
        }
    }
    Ok(true)
}

fn cmd_compare(mut args: Vec<String>) -> Result<bool, String> {
    let mut tol = 0.25f64;
    if let Some(v) = take_value_flag(&mut args, "--tol")? {
        tol = v.parse().map_err(|e| format!("--tol: {e}"))?;
    }
    let [old_path, new_path] = args.as_slice() else {
        return Err("usage: t3d-sched compare OLD.json NEW.json [--tol F]".to_string());
    };
    let read = |p: &str| -> Result<SchedDoc, String> {
        SchedDoc::parse(&std::fs::read_to_string(p).map_err(|e| format!("{p}: {e}"))?)
    };
    let (old, new) = (read(old_path)?, read(new_path)?);
    let problems = compare(&old, &new, tol);
    if problems.is_empty() {
        println!(
            "OK: {} load points within {:.0}% of baseline",
            new.points.len(),
            tol * 100.0
        );
        return Ok(true);
    }
    for p in &problems {
        eprintln!("REGRESSION: {p}");
    }
    Ok(false)
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: t3d-sched <gen|run|sweep|compare> [flags]");
        return ExitCode::from(2);
    }
    let cmd = args.remove(0);
    let result = match cmd.as_str() {
        "gen" => cmd_gen(args).map(|()| true),
        "run" => cmd_run(args).map(|()| true),
        "sweep" => cmd_sweep(args),
        "compare" => cmd_compare(args),
        other => {
            eprintln!("unknown command {other:?}; expected gen, run, sweep or compare");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(2)
        }
    }
}
